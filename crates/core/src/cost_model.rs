//! Cost models: how the scheduler measures candidate stages.
//!
//! The paper's `GenerateStage` measures each candidate stage directly on the
//! target device. [`CostModel`] abstracts that measurement so the dynamic
//! program can run against the `ios-sim` simulator ([`SimCostModel`]), a
//! cached wrapper ([`CachingCostModel`]), or any synthetic model used in
//! tests.
//!
//! Real devices enter through the [`StageProfiler`] capability: anything
//! that can *execute* a candidate stage once (an execution backend, a
//! remote device worker) becomes a full profiling cost model by wrapping it
//! in [`ProfiledCostModel`], which adds the measurement policy — warmup
//! runs, median-of-N timed repeats, and a stage-fingerprint cache so the
//! dynamic program never profiles the same stage twice. This closes the
//! paper's optimize → profile → execute loop: the scheduler optimizes
//! against latencies measured on the very backend that will run the
//! schedule.

use crate::merge::MergedConv;
use ios_ir::{Graph, OpId};
use ios_sim::{KernelSpec, Simulator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of stage latencies for the scheduler.
pub trait CostModel {
    /// Latency (µs) of executing `groups` with the "concurrent execution"
    /// strategy: groups run concurrently, operators inside a group run
    /// sequentially in the given order.
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64;

    /// Latency (µs) of executing a merged convolution (plus its split).
    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64;

    /// Number of latency measurements performed so far. The paper's
    /// "optimization cost" is dominated by on-device profiling, so the
    /// measurement count is the hardware-independent proxy reported by the
    /// Figure 9 and Figure 12 reproductions.
    fn measurement_count(&self) -> u64;
}

// Cost models take `&self` everywhere, so references and shared pointers are
// cost models too. This is what lets one `CachingCostModel` back both the
// serving-time schedule cache and background re-optimization threads (the
// `ios-serve` runtime shares an `Arc<CachingCostModel<SimCostModel>>`).
impl<C: CostModel + ?Sized> CostModel for &C {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        (**self).concurrent_latency(graph, groups)
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        (**self).merge_latency(graph, merged)
    }

    fn measurement_count(&self) -> u64 {
        (**self).measurement_count()
    }
}

impl<C: CostModel + ?Sized> CostModel for std::sync::Arc<C> {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        (**self).concurrent_latency(graph, groups)
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        (**self).merge_latency(graph, merged)
    }

    fn measurement_count(&self) -> u64 {
        (**self).measurement_count()
    }
}

/// Cost model backed by the analytical GPU simulator.
#[derive(Debug)]
pub struct SimCostModel {
    simulator: Simulator,
    measurements: AtomicU64,
}

impl SimCostModel {
    /// Wraps a simulator.
    #[must_use]
    pub fn new(simulator: Simulator) -> Self {
        SimCostModel {
            simulator,
            measurements: AtomicU64::new(0),
        }
    }

    /// The underlying simulator.
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }
}

impl CostModel for SimCostModel {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        self.measurements.fetch_add(1, Ordering::Relaxed);
        self.simulator.measure_stage(graph, groups).latency_us
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        self.measurements.fetch_add(1, Ordering::Relaxed);
        // The merged convolution kernel…
        let conv = ios_sim::conv2d_kernel(
            format!("merged[{}]", merged.parts.len()),
            merged.input_shape,
            merged.params,
            self.simulator.library(),
        );
        // …followed by the split (modeled as an element-wise copy kernel).
        let split_elems = (merged.split_bytes() / 8) as usize; // read+write → elements
        let split = KernelSpec {
            name: "split".to_string(),
            flops: 0,
            mem_bytes: merged.split_bytes(),
            working_set_bytes: merged.split_bytes(),
            thread_blocks: (split_elems / 256).max(1),
            compute_efficiency: 1.0,
            memory_efficiency: 0.85,
        };
        let _ = graph; // the merged kernel is fully described by `merged`
        self.simulator
            .measure_kernel_stage(&[vec![conv, split]])
            .latency_us
    }

    fn measurement_count(&self) -> u64 {
        self.measurements.load(Ordering::Relaxed)
    }
}

/// The capability of executing a candidate stage once on a real execution
/// substrate — the device half of the paper's on-device profiler.
///
/// Implementations run the stage exactly as the production executor would
/// (concurrent groups on real threads, merged stages through the merged
/// weight tensor plus split) but do not time anything themselves:
/// [`ProfiledCostModel`] owns the measurement policy (warmup, repeats,
/// median, caching) so every profiler gets the same treatment. The CPU
/// execution backend provides `CpuStageProfiler` in `ios-backend`.
pub trait StageProfiler {
    /// Executes `groups` once with the concurrent-execution strategy
    /// (groups concurrently, operators of a group sequentially in order).
    fn run_concurrent(&self, graph: &Graph, groups: &[Vec<OpId>]);

    /// Executes a merged convolution stage (merged kernel + split) once.
    fn run_merge(&self, graph: &Graph, merged: &MergedConv);

    /// Short label of the profiled substrate, for reports.
    fn device_name(&self) -> &'static str {
        "unknown-device"
    }
}

// Like cost models, profilers take `&self` everywhere: references and
// shared pointers to a profiler are profilers too, so one warmed-up
// substrate can back several cost models (e.g. a serving engine and a
// background re-optimizer).
impl<P: StageProfiler + ?Sized> StageProfiler for &P {
    fn run_concurrent(&self, graph: &Graph, groups: &[Vec<OpId>]) {
        (**self).run_concurrent(graph, groups);
    }

    fn run_merge(&self, graph: &Graph, merged: &MergedConv) {
        (**self).run_merge(graph, merged);
    }

    fn device_name(&self) -> &'static str {
        (**self).device_name()
    }
}

impl<P: StageProfiler + ?Sized> StageProfiler for std::sync::Arc<P> {
    fn run_concurrent(&self, graph: &Graph, groups: &[Vec<OpId>]) {
        (**self).run_concurrent(graph, groups);
    }

    fn run_merge(&self, graph: &Graph, merged: &MergedConv) {
        (**self).run_merge(graph, merged);
    }

    fn device_name(&self) -> &'static str {
        (**self).device_name()
    }
}

/// A cost model that *measures* stage latency on a [`StageProfiler`]
/// instead of simulating it — the paper's §4 profiling loop.
///
/// Every distinct stage is profiled once: `warmup` untimed runs (filling
/// weight caches, scratch pools and the branch predictor), then `repeats`
/// timed runs whose **median** is the reported latency (the median is
/// robust against one preempted run, which on shared CI hosts is the
/// dominant noise source). Results are cached by the same key the
/// [`CachingCostModel`] uses (graph fingerprint plus stage), so a dynamic
/// program that revisits a stage from many states pays for it once.
///
/// Measurements are **serialized**: concurrent callers (a synchronous
/// optimizer racing a background re-optimizer) take a measurement lock,
/// re-check the cache, and only then profile — otherwise two threads would
/// time the same device simultaneously and each would cache the other's
/// interference (a stage latency inflated by lock waits, forever).
pub struct ProfiledCostModel<P> {
    profiler: P,
    warmup: u32,
    repeats: u32,
    concurrent_cache: Mutex<HashMap<ConcurrentStageKey, f64>>,
    merge_cache: Mutex<HashMap<MergeStageKey, f64>>,
    /// Held across one full warmup-plus-repeats measurement so timed runs
    /// never overlap (and never time another thread's lock wait).
    measure_lock: Mutex<()>,
    /// Distinct stages profiled (cache misses).
    profiled: AtomicU64,
    /// Total stage executions requested from the profiler (warmup included).
    stage_runs: AtomicU64,
    hits: AtomicU64,
}

impl<P: std::fmt::Debug> std::fmt::Debug for ProfiledCostModel<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfiledCostModel")
            .field("profiler", &self.profiler)
            .field("warmup", &self.warmup)
            .field("repeats", &self.repeats)
            .field("profiled", &self.profiled.load(Ordering::Relaxed))
            .field("stage_runs", &self.stage_runs.load(Ordering::Relaxed))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl<P: StageProfiler> ProfiledCostModel<P> {
    /// Wraps a profiler with the default policy: 1 warmup run and the
    /// median of 5 timed repeats per distinct stage.
    #[must_use]
    pub fn new(profiler: P) -> Self {
        Self::with_policy(profiler, 1, 5)
    }

    /// Wraps a profiler with an explicit measurement policy. `repeats` is
    /// clamped to at least 1; serving runtimes that re-optimize in the
    /// background typically drop to `(1, 3)` to bound optimization cost.
    #[must_use]
    pub fn with_policy(profiler: P, warmup: u32, repeats: u32) -> Self {
        ProfiledCostModel {
            profiler,
            warmup,
            repeats: repeats.max(1),
            concurrent_cache: Mutex::new(HashMap::new()),
            merge_cache: Mutex::new(HashMap::new()),
            measure_lock: Mutex::new(()),
            profiled: AtomicU64::new(0),
            stage_runs: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The wrapped profiler.
    #[must_use]
    pub fn profiler(&self) -> &P {
        &self.profiler
    }

    /// Number of distinct stages profiled so far.
    #[must_use]
    pub fn profiled_stages(&self) -> u64 {
        self.profiled.load(Ordering::Relaxed)
    }

    /// Total stage executions performed (warmup + timed, all stages).
    #[must_use]
    pub fn stage_runs(&self) -> u64 {
        self.stage_runs.load(Ordering::Relaxed)
    }

    /// Number of latency requests served from the stage cache.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Runs the measurement policy over one stage-execution closure:
    /// `warmup` untimed runs, then the median of `repeats` timed runs, µs.
    fn measure(&self, mut run: impl FnMut()) -> f64 {
        for _ in 0..self.warmup {
            run();
        }
        let mut samples: Vec<f64> = (0..self.repeats)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        self.stage_runs
            .fetch_add(u64::from(self.warmup + self.repeats), Ordering::Relaxed);
        self.profiled.fetch_add(1, Ordering::Relaxed);
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mid = samples.len() / 2;
        if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            0.5 * (samples[mid - 1] + samples[mid])
        }
    }
}

impl<P: StageProfiler> CostModel for ProfiledCostModel<P> {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        let key = (graph_fingerprint(graph), groups.to_vec());
        if let Some(cached) = self.concurrent_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        // One measurement at a time; re-check under the lock so a racing
        // caller that just profiled this stage is served its result
        // instead of profiling it again.
        let _one_at_a_time = self.measure_lock.lock();
        if let Some(cached) = self.concurrent_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.measure(|| self.profiler.run_concurrent(graph, groups));
        self.concurrent_cache.lock().insert(key, value);
        value
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        let key = (graph_fingerprint(graph), merged.parts.clone());
        if let Some(cached) = self.merge_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let _one_at_a_time = self.measure_lock.lock();
        if let Some(cached) = self.merge_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.measure(|| self.profiler.run_merge(graph, merged));
        self.merge_cache.lock().insert(key, value);
        value
    }

    fn measurement_count(&self) -> u64 {
        self.profiled.load(Ordering::Relaxed)
    }
}

/// A memoizing wrapper around another cost model.
///
/// The dynamic program may evaluate the same stage as the ending of many
/// different states; on real hardware each evaluation is a fresh profiling
/// run, so the paper caches stage latencies — this wrapper plays that role
/// and also lets the reproduction count *distinct* profiled stages.
///
/// The caches use interior mutability behind [`Mutex`]es, so a single
/// instance is `Send + Sync` (given a `Send + Sync` inner model) and can be
/// measured from many threads concurrently — the serving runtime relies on
/// this to share one cost model between its schedule cache and background
/// re-optimization workers.
///
/// Cache entries are keyed by a fingerprint of the measured *graph* (name,
/// input shapes, size) in addition to the stage itself: operator ids repeat
/// across the blocks of a network and across batch-resized instances of the
/// same block, and a one-graph key would silently serve block 0's latency
/// for block 3's stage, or batch-1 latencies for a batch-32 instance.
pub struct CachingCostModel<C> {
    inner: C,
    concurrent_cache: Mutex<HashMap<ConcurrentStageKey, f64>>,
    merge_cache: Mutex<HashMap<MergeStageKey, f64>>,
    hits: AtomicU64,
}

/// Cache key of a concurrent-execution stage: graph fingerprint + groups.
type ConcurrentStageKey = (u64, Vec<Vec<OpId>>);
/// Cache key of an operator-merge stage: graph fingerprint + merged parts.
type MergeStageKey = (u64, Vec<OpId>);

/// A structural fingerprint of a graph, distinguishing the graphs a stage
/// key may otherwise collide across: different blocks (names differ),
/// different batch sizes of one block (shapes differ), and same-shaped
/// graphs whose operators differ only in hyper-parameters (kinds differ).
/// Shared by [`CachingCostModel`], [`ProfiledCostModel`] and the backend
/// profiling harness (which keys its per-graph weights/inputs by it).
#[must_use]
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    graph.name().hash(&mut hasher);
    graph.input_shapes().hash(&mut hasher);
    for op in graph.ops() {
        op.kind.hash(&mut hasher);
        op.inputs.hash(&mut hasher);
        op.output_shape.hash(&mut hasher);
    }
    hasher.finish()
}

impl<C: std::fmt::Debug> std::fmt::Debug for CachingCostModel<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingCostModel")
            .field("inner", &self.inner)
            .field("cached_concurrent", &self.concurrent_cache.lock().len())
            .field("cached_merge", &self.merge_cache.lock().len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl<C: CostModel> CachingCostModel<C> {
    /// Wraps a cost model with a cache.
    #[must_use]
    pub fn new(inner: C) -> Self {
        CachingCostModel {
            inner,
            concurrent_cache: Mutex::new(HashMap::new()),
            merge_cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of cache hits (measurements avoided).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The wrapped cost model.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CostModel> CostModel for CachingCostModel<C> {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        let key = (graph_fingerprint(graph), groups.to_vec());
        if let Some(cached) = self.concurrent_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.inner.concurrent_latency(graph, groups);
        self.concurrent_cache.lock().insert(key, value);
        value
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        let key = (graph_fingerprint(graph), merged.parts.clone());
        if let Some(cached) = self.merge_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.inner.merge_latency(graph, merged);
        self.merge_cache.lock().insert(key, value);
        value
    }

    fn measurement_count(&self) -> u64 {
        self.inner.measurement_count()
    }
}

#[cfg(test)]
pub(crate) mod testing {
    //! A synthetic cost model with simple, fully predictable behaviour used
    //! by the scheduler unit tests: each operator costs `base_us`, a stage
    //! costs the maximum over its groups of the sum of their operator costs
    //! plus `stage_overhead_us`, and merged stages cost the sum of operator
    //! costs times `merge_factor`.

    use super::*;

    #[derive(Debug)]
    pub struct UnitCostModel {
        pub base_us: f64,
        pub stage_overhead_us: f64,
        pub merge_factor: f64,
        pub measurements: AtomicU64,
    }

    impl Default for UnitCostModel {
        fn default() -> Self {
            UnitCostModel {
                base_us: 10.0,
                stage_overhead_us: 1.0,
                merge_factor: 0.8,
                measurements: AtomicU64::new(0),
            }
        }
    }

    impl CostModel for UnitCostModel {
        fn concurrent_latency(&self, _graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
            self.measurements.fetch_add(1, Ordering::Relaxed);
            let max_group = groups
                .iter()
                .map(|g| g.len() as f64 * self.base_us)
                .fold(0.0, f64::max);
            max_group + self.stage_overhead_us
        }

        fn merge_latency(&self, _graph: &Graph, merged: &MergedConv) -> f64 {
            self.measurements.fetch_add(1, Ordering::Relaxed);
            merged.parts.len() as f64 * self.base_us * self.merge_factor + self.stage_overhead_us
        }

        fn measurement_count(&self) -> u64 {
            self.measurements.load(Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};
    use ios_sim::DeviceKind;

    fn two_branch_graph_at(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("two_branch", TensorShape::new(batch, 128, 16, 16));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let cat = b.concat("cat", &[a, c]);
        b.build(vec![cat])
    }

    fn two_branch_graph() -> Graph {
        two_branch_graph_at(1)
    }

    #[test]
    fn sim_cost_model_measures_and_counts() {
        let g = two_branch_graph();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let seq = cost.concurrent_latency(&g, &[vec![OpId(0), OpId(1)]]);
        let conc = cost.concurrent_latency(&g, &[vec![OpId(0)], vec![OpId(1)]]);
        assert!(conc < seq);
        assert_eq!(cost.measurement_count(), 2);
    }

    #[test]
    fn merge_latency_beats_sequential_for_shared_input_convs() {
        let g = two_branch_graph();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let merged = crate::merge::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        let merge = cost.merge_latency(&g, &merged);
        let seq = cost.concurrent_latency(&g, &[vec![OpId(0), OpId(1)]]);
        assert!(merge < seq, "merge {merge} vs sequential {seq}");
    }

    #[test]
    fn caching_never_mixes_graphs_or_batch_sizes() {
        // Operator ids repeat across blocks and across batch-resized
        // instances of one block, so the cache key must include the graph.
        let g1 = two_branch_graph_at(1);
        let g8 = two_branch_graph_at(8);
        let mut other_name = GraphBuilder::new("other_block", TensorShape::new(1, 128, 16, 16));
        let x = other_name.input(0);
        let a = other_name.conv2d("a", x, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let c = other_name.conv2d("c", x, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let cat = other_name.concat("cat", &[a, c]);
        let other = other_name.build(vec![cat]);

        // Same name, same shapes, same op count — only the kernel size of
        // one conv differs: still a distinct cache entry.
        let mut same_shape = GraphBuilder::new("two_branch", TensorShape::new(1, 128, 16, 16));
        let x = same_shape.input(0);
        let a = same_shape.conv2d("a", x, Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)));
        let c = same_shape.conv2d("c", x, Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)));
        let cat = same_shape.concat("cat", &[a, c]);
        let params_only = same_shape.build(vec![cat]);

        let cost = CachingCostModel::new(SimCostModel::new(Simulator::new(DeviceKind::TeslaV100)));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let l1 = cost.concurrent_latency(&g1, &groups);
        let l8 = cost.concurrent_latency(&g8, &groups);
        let lo = cost.concurrent_latency(&other, &groups);
        let lp = cost.concurrent_latency(&params_only, &groups);
        assert_eq!(
            cost.cache_hits(),
            0,
            "four distinct graphs must be four cache entries"
        );
        assert_eq!(cost.inner().measurement_count(), 4);
        assert!(
            lp < l1,
            "the 1×1-kernel variant must be cheaper than its 3×3 twin ({lp} vs {l1})"
        );
        assert!(
            l8 > l1,
            "batch 8 must cost more than batch 1 ({l8} vs {l1})"
        );
        assert!(
            lo < l1,
            "the 1×1/16-channel block must be cheaper ({lo} vs {l1})"
        );
        // Repeats still hit.
        let again = cost.concurrent_latency(&g8, &groups);
        assert_eq!(again, l8);
        assert_eq!(cost.cache_hits(), 1);
    }

    #[test]
    fn cost_models_are_thread_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimCostModel>();
        assert_send_sync::<CachingCostModel<SimCostModel>>();

        // One shared caching model measured from several threads at once;
        // every thread must observe the same latency and the distinct-stage
        // count must not double-count the shared stage.
        let g = two_branch_graph();
        let cost = std::sync::Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            DeviceKind::TeslaV100,
        ))));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let expected = cost.concurrent_latency(&g, &groups);
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cost = std::sync::Arc::clone(&cost);
                    let g = &g;
                    let groups = &groups;
                    scope.spawn(move || cost.concurrent_latency(g, groups))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("measurement thread"))
                .collect()
        });
        assert!(results.iter().all(|&r| r == expected));
        assert_eq!(
            cost.inner().measurement_count(),
            1,
            "all threads must hit the cache"
        );
        assert_eq!(cost.cache_hits(), 4);

        // `&C` and `Arc<C>` are cost models themselves (blanket impls).
        fn takes_cost_model<C: CostModel>(c: C) -> u64 {
            c.measurement_count()
        }
        assert_eq!(takes_cost_model(&*cost), 1);
        assert_eq!(takes_cost_model(std::sync::Arc::clone(&cost)), 1);
    }

    /// A profiler that counts its runs and idles a deterministic amount so
    /// the measured medians are stable enough to assert against.
    #[derive(Debug, Default)]
    struct CountingProfiler {
        concurrent_runs: AtomicU64,
        merge_runs: AtomicU64,
    }

    impl StageProfiler for CountingProfiler {
        fn run_concurrent(&self, _graph: &Graph, groups: &[Vec<OpId>]) {
            self.concurrent_runs.fetch_add(1, Ordering::Relaxed);
            // Busy-work proportional to the widest group so latencies are
            // positive and monotone in stage size.
            let ops: usize = groups.iter().map(Vec::len).max().unwrap_or(0);
            std::hint::black_box((0..ops * 500).map(|i| i as f64).sum::<f64>());
        }

        fn run_merge(&self, _graph: &Graph, merged: &MergedConv) {
            self.merge_runs.fetch_add(1, Ordering::Relaxed);
            std::hint::black_box((0..merged.parts.len() * 500).map(|i| i as f64).sum::<f64>());
        }

        fn device_name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn profiled_model_runs_warmup_plus_repeats_once_per_stage() {
        let g = two_branch_graph();
        let cost = ProfiledCostModel::with_policy(CountingProfiler::default(), 2, 3);
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let first = cost.concurrent_latency(&g, &groups);
        assert!(first > 0.0, "profiled latency must be positive");
        assert_eq!(
            cost.profiler().concurrent_runs.load(Ordering::Relaxed),
            5,
            "2 warmup + 3 timed runs"
        );
        assert_eq!(cost.profiled_stages(), 1);
        assert_eq!(cost.stage_runs(), 5);
        assert_eq!(cost.measurement_count(), 1);

        // A repeat request is served from the stage cache: no further runs.
        let again = cost.concurrent_latency(&g, &groups);
        assert_eq!(again, first);
        assert_eq!(cost.profiler().concurrent_runs.load(Ordering::Relaxed), 5);
        assert_eq!(cost.cache_hits(), 1);

        // Merge stages profile through the merge path.
        let merged = crate::merge::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        let m = cost.merge_latency(&g, &merged);
        assert!(m > 0.0);
        assert_eq!(cost.profiler().merge_runs.load(Ordering::Relaxed), 5);
        assert_eq!(cost.profiled_stages(), 2);
    }

    #[test]
    fn racing_callers_profile_a_stage_once() {
        // Several threads request the same uncached stage at once: the
        // measurement lock serializes them, the re-check under the lock
        // turns the losers into cache hits, and the profiler runs only one
        // warmup+repeats sequence — no double-profiled, interference-timed
        // entry can land in the cache.
        let g = two_branch_graph();
        let cost = std::sync::Arc::new(ProfiledCostModel::with_policy(
            CountingProfiler::default(),
            1,
            3,
        ));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cost = std::sync::Arc::clone(&cost);
                    let g = &g;
                    let groups = &groups;
                    scope.spawn(move || cost.concurrent_latency(g, groups))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("measurement thread"))
                .collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            cost.profiler().concurrent_runs.load(Ordering::Relaxed),
            4,
            "exactly one warmup + 3 repeats despite 4 racing callers"
        );
        assert_eq!(cost.profiled_stages(), 1);
        assert_eq!(cost.cache_hits(), 3);
    }

    #[test]
    fn profiled_model_distinguishes_graphs_like_the_caching_model() {
        // The same stage key on two batch-resized instances of one block
        // must be profiled separately (the fingerprint includes shapes).
        let g1 = two_branch_graph_at(1);
        let g8 = two_branch_graph_at(8);
        let cost = ProfiledCostModel::with_policy(CountingProfiler::default(), 0, 1);
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let _ = cost.concurrent_latency(&g1, &groups);
        let _ = cost.concurrent_latency(&g8, &groups);
        assert_eq!(
            cost.profiled_stages(),
            2,
            "batch-1 and batch-8 instances must be distinct profile entries"
        );
        assert_eq!(cost.cache_hits(), 0);
    }

    #[test]
    fn profiled_model_drives_the_scheduler_end_to_end() {
        // The whole DP runs against a profiler-backed model; the schedule
        // must be valid and the profiler must have been exercised.
        let g = two_branch_graph();
        let cost = ProfiledCostModel::with_policy(CountingProfiler::default(), 1, 3);
        let result =
            crate::dp::schedule_graph(&g, &cost, &crate::variants::SchedulerConfig::default());
        assert!(result.schedule.validate(&g).is_ok());
        assert!(result.latency_us > 0.0);
        assert!(cost.profiled_stages() > 0);
        assert!(cost.stage_runs() >= cost.profiled_stages() * 4);

        // Profilers are shareable through the blanket impls.
        fn takes_profiler<P: StageProfiler>(p: P) -> &'static str {
            p.device_name()
        }
        assert_eq!(takes_profiler(cost.profiler()), "counting");
        assert_eq!(
            takes_profiler(std::sync::Arc::new(CountingProfiler::default())),
            "counting"
        );
    }

    #[test]
    fn caching_avoids_repeat_measurements() {
        let g = two_branch_graph();
        let cost = CachingCostModel::new(SimCostModel::new(Simulator::new(DeviceKind::TeslaV100)));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let a = cost.concurrent_latency(&g, &groups);
        let b = cost.concurrent_latency(&g, &groups);
        assert_eq!(a, b);
        assert_eq!(cost.measurement_count(), 1);
        assert_eq!(cost.cache_hits(), 1);
        // Merge caching too.
        let merged = crate::merge::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        let m1 = cost.merge_latency(&g, &merged);
        let m2 = cost.merge_latency(&g, &merged);
        assert_eq!(m1, m2);
        assert_eq!(cost.cache_hits(), 2);
        assert!(cost.inner().measurement_count() >= 2);
    }
}
