//! Cost models: how the scheduler measures candidate stages.
//!
//! The paper's `GenerateStage` measures each candidate stage directly on the
//! target device. [`CostModel`] abstracts that measurement so the dynamic
//! program can run against the `ios-sim` simulator ([`SimCostModel`]), a
//! cached wrapper ([`CachingCostModel`]), or any synthetic model used in
//! tests.

use crate::merge::MergedConv;
use ios_ir::{Graph, OpId};
use ios_sim::{KernelSpec, Simulator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of stage latencies for the scheduler.
pub trait CostModel {
    /// Latency (µs) of executing `groups` with the "concurrent execution"
    /// strategy: groups run concurrently, operators inside a group run
    /// sequentially in the given order.
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64;

    /// Latency (µs) of executing a merged convolution (plus its split).
    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64;

    /// Number of latency measurements performed so far. The paper's
    /// "optimization cost" is dominated by on-device profiling, so the
    /// measurement count is the hardware-independent proxy reported by the
    /// Figure 9 and Figure 12 reproductions.
    fn measurement_count(&self) -> u64;
}

// Cost models take `&self` everywhere, so references and shared pointers are
// cost models too. This is what lets one `CachingCostModel` back both the
// serving-time schedule cache and background re-optimization threads (the
// `ios-serve` runtime shares an `Arc<CachingCostModel<SimCostModel>>`).
impl<C: CostModel + ?Sized> CostModel for &C {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        (**self).concurrent_latency(graph, groups)
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        (**self).merge_latency(graph, merged)
    }

    fn measurement_count(&self) -> u64 {
        (**self).measurement_count()
    }
}

impl<C: CostModel + ?Sized> CostModel for std::sync::Arc<C> {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        (**self).concurrent_latency(graph, groups)
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        (**self).merge_latency(graph, merged)
    }

    fn measurement_count(&self) -> u64 {
        (**self).measurement_count()
    }
}

/// Cost model backed by the analytical GPU simulator.
#[derive(Debug)]
pub struct SimCostModel {
    simulator: Simulator,
    measurements: AtomicU64,
}

impl SimCostModel {
    /// Wraps a simulator.
    #[must_use]
    pub fn new(simulator: Simulator) -> Self {
        SimCostModel {
            simulator,
            measurements: AtomicU64::new(0),
        }
    }

    /// The underlying simulator.
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }
}

impl CostModel for SimCostModel {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        self.measurements.fetch_add(1, Ordering::Relaxed);
        self.simulator.measure_stage(graph, groups).latency_us
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        self.measurements.fetch_add(1, Ordering::Relaxed);
        // The merged convolution kernel…
        let conv = ios_sim::conv2d_kernel(
            format!("merged[{}]", merged.parts.len()),
            merged.input_shape,
            merged.params,
            self.simulator.library(),
        );
        // …followed by the split (modeled as an element-wise copy kernel).
        let split_elems = (merged.split_bytes() / 8) as usize; // read+write → elements
        let split = KernelSpec {
            name: "split".to_string(),
            flops: 0,
            mem_bytes: merged.split_bytes(),
            working_set_bytes: merged.split_bytes(),
            thread_blocks: (split_elems / 256).max(1),
            compute_efficiency: 1.0,
            memory_efficiency: 0.85,
        };
        let _ = graph; // the merged kernel is fully described by `merged`
        self.simulator
            .measure_kernel_stage(&[vec![conv, split]])
            .latency_us
    }

    fn measurement_count(&self) -> u64 {
        self.measurements.load(Ordering::Relaxed)
    }
}

/// A memoizing wrapper around another cost model.
///
/// The dynamic program may evaluate the same stage as the ending of many
/// different states; on real hardware each evaluation is a fresh profiling
/// run, so the paper caches stage latencies — this wrapper plays that role
/// and also lets the reproduction count *distinct* profiled stages.
///
/// The caches use interior mutability behind [`Mutex`]es, so a single
/// instance is `Send + Sync` (given a `Send + Sync` inner model) and can be
/// measured from many threads concurrently — the serving runtime relies on
/// this to share one cost model between its schedule cache and background
/// re-optimization workers.
///
/// Cache entries are keyed by a fingerprint of the measured *graph* (name,
/// input shapes, size) in addition to the stage itself: operator ids repeat
/// across the blocks of a network and across batch-resized instances of the
/// same block, and a one-graph key would silently serve block 0's latency
/// for block 3's stage, or batch-1 latencies for a batch-32 instance.
pub struct CachingCostModel<C> {
    inner: C,
    concurrent_cache: Mutex<HashMap<ConcurrentStageKey, f64>>,
    merge_cache: Mutex<HashMap<MergeStageKey, f64>>,
    hits: AtomicU64,
}

/// Cache key of a concurrent-execution stage: graph fingerprint + groups.
type ConcurrentStageKey = (u64, Vec<Vec<OpId>>);
/// Cache key of an operator-merge stage: graph fingerprint + merged parts.
type MergeStageKey = (u64, Vec<OpId>);

/// A structural fingerprint of a graph, distinguishing the graphs a stage
/// key may otherwise collide across: different blocks (names differ),
/// different batch sizes of one block (shapes differ), and same-shaped
/// graphs whose operators differ only in hyper-parameters (kinds differ).
fn graph_fingerprint(graph: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    graph.name().hash(&mut hasher);
    graph.input_shapes().hash(&mut hasher);
    for op in graph.ops() {
        op.kind.hash(&mut hasher);
        op.inputs.hash(&mut hasher);
        op.output_shape.hash(&mut hasher);
    }
    hasher.finish()
}

impl<C: std::fmt::Debug> std::fmt::Debug for CachingCostModel<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingCostModel")
            .field("inner", &self.inner)
            .field("cached_concurrent", &self.concurrent_cache.lock().len())
            .field("cached_merge", &self.merge_cache.lock().len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl<C: CostModel> CachingCostModel<C> {
    /// Wraps a cost model with a cache.
    #[must_use]
    pub fn new(inner: C) -> Self {
        CachingCostModel {
            inner,
            concurrent_cache: Mutex::new(HashMap::new()),
            merge_cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of cache hits (measurements avoided).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The wrapped cost model.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CostModel> CostModel for CachingCostModel<C> {
    fn concurrent_latency(&self, graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
        let key = (graph_fingerprint(graph), groups.to_vec());
        if let Some(cached) = self.concurrent_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.inner.concurrent_latency(graph, groups);
        self.concurrent_cache.lock().insert(key, value);
        value
    }

    fn merge_latency(&self, graph: &Graph, merged: &MergedConv) -> f64 {
        let key = (graph_fingerprint(graph), merged.parts.clone());
        if let Some(cached) = self.merge_cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        let value = self.inner.merge_latency(graph, merged);
        self.merge_cache.lock().insert(key, value);
        value
    }

    fn measurement_count(&self) -> u64 {
        self.inner.measurement_count()
    }
}

#[cfg(test)]
pub(crate) mod testing {
    //! A synthetic cost model with simple, fully predictable behaviour used
    //! by the scheduler unit tests: each operator costs `base_us`, a stage
    //! costs the maximum over its groups of the sum of their operator costs
    //! plus `stage_overhead_us`, and merged stages cost the sum of operator
    //! costs times `merge_factor`.

    use super::*;

    #[derive(Debug)]
    pub struct UnitCostModel {
        pub base_us: f64,
        pub stage_overhead_us: f64,
        pub merge_factor: f64,
        pub measurements: AtomicU64,
    }

    impl Default for UnitCostModel {
        fn default() -> Self {
            UnitCostModel {
                base_us: 10.0,
                stage_overhead_us: 1.0,
                merge_factor: 0.8,
                measurements: AtomicU64::new(0),
            }
        }
    }

    impl CostModel for UnitCostModel {
        fn concurrent_latency(&self, _graph: &Graph, groups: &[Vec<OpId>]) -> f64 {
            self.measurements.fetch_add(1, Ordering::Relaxed);
            let max_group = groups
                .iter()
                .map(|g| g.len() as f64 * self.base_us)
                .fold(0.0, f64::max);
            max_group + self.stage_overhead_us
        }

        fn merge_latency(&self, _graph: &Graph, merged: &MergedConv) -> f64 {
            self.measurements.fetch_add(1, Ordering::Relaxed);
            merged.parts.len() as f64 * self.base_us * self.merge_factor + self.stage_overhead_us
        }

        fn measurement_count(&self) -> u64 {
            self.measurements.load(Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};
    use ios_sim::DeviceKind;

    fn two_branch_graph_at(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("two_branch", TensorShape::new(batch, 128, 16, 16));
        let x = b.input(0);
        let a = b.conv2d("a", x, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", x, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let cat = b.concat("cat", &[a, c]);
        b.build(vec![cat])
    }

    fn two_branch_graph() -> Graph {
        two_branch_graph_at(1)
    }

    #[test]
    fn sim_cost_model_measures_and_counts() {
        let g = two_branch_graph();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let seq = cost.concurrent_latency(&g, &[vec![OpId(0), OpId(1)]]);
        let conc = cost.concurrent_latency(&g, &[vec![OpId(0)], vec![OpId(1)]]);
        assert!(conc < seq);
        assert_eq!(cost.measurement_count(), 2);
    }

    #[test]
    fn merge_latency_beats_sequential_for_shared_input_convs() {
        let g = two_branch_graph();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let merged = crate::merge::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        let merge = cost.merge_latency(&g, &merged);
        let seq = cost.concurrent_latency(&g, &[vec![OpId(0), OpId(1)]]);
        assert!(merge < seq, "merge {merge} vs sequential {seq}");
    }

    #[test]
    fn caching_never_mixes_graphs_or_batch_sizes() {
        // Operator ids repeat across blocks and across batch-resized
        // instances of one block, so the cache key must include the graph.
        let g1 = two_branch_graph_at(1);
        let g8 = two_branch_graph_at(8);
        let mut other_name = GraphBuilder::new("other_block", TensorShape::new(1, 128, 16, 16));
        let x = other_name.input(0);
        let a = other_name.conv2d("a", x, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let c = other_name.conv2d("c", x, Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)));
        let cat = other_name.concat("cat", &[a, c]);
        let other = other_name.build(vec![cat]);

        // Same name, same shapes, same op count — only the kernel size of
        // one conv differs: still a distinct cache entry.
        let mut same_shape = GraphBuilder::new("two_branch", TensorShape::new(1, 128, 16, 16));
        let x = same_shape.input(0);
        let a = same_shape.conv2d("a", x, Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)));
        let c = same_shape.conv2d("c", x, Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)));
        let cat = same_shape.concat("cat", &[a, c]);
        let params_only = same_shape.build(vec![cat]);

        let cost = CachingCostModel::new(SimCostModel::new(Simulator::new(DeviceKind::TeslaV100)));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let l1 = cost.concurrent_latency(&g1, &groups);
        let l8 = cost.concurrent_latency(&g8, &groups);
        let lo = cost.concurrent_latency(&other, &groups);
        let lp = cost.concurrent_latency(&params_only, &groups);
        assert_eq!(
            cost.cache_hits(),
            0,
            "four distinct graphs must be four cache entries"
        );
        assert_eq!(cost.inner().measurement_count(), 4);
        assert!(
            lp < l1,
            "the 1×1-kernel variant must be cheaper than its 3×3 twin ({lp} vs {l1})"
        );
        assert!(
            l8 > l1,
            "batch 8 must cost more than batch 1 ({l8} vs {l1})"
        );
        assert!(
            lo < l1,
            "the 1×1/16-channel block must be cheaper ({lo} vs {l1})"
        );
        // Repeats still hit.
        let again = cost.concurrent_latency(&g8, &groups);
        assert_eq!(again, l8);
        assert_eq!(cost.cache_hits(), 1);
    }

    #[test]
    fn cost_models_are_thread_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimCostModel>();
        assert_send_sync::<CachingCostModel<SimCostModel>>();

        // One shared caching model measured from several threads at once;
        // every thread must observe the same latency and the distinct-stage
        // count must not double-count the shared stage.
        let g = two_branch_graph();
        let cost = std::sync::Arc::new(CachingCostModel::new(SimCostModel::new(Simulator::new(
            DeviceKind::TeslaV100,
        ))));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let expected = cost.concurrent_latency(&g, &groups);
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cost = std::sync::Arc::clone(&cost);
                    let g = &g;
                    let groups = &groups;
                    scope.spawn(move || cost.concurrent_latency(g, groups))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("measurement thread"))
                .collect()
        });
        assert!(results.iter().all(|&r| r == expected));
        assert_eq!(
            cost.inner().measurement_count(),
            1,
            "all threads must hit the cache"
        );
        assert_eq!(cost.cache_hits(), 4);

        // `&C` and `Arc<C>` are cost models themselves (blanket impls).
        fn takes_cost_model<C: CostModel>(c: C) -> u64 {
            c.measurement_count()
        }
        assert_eq!(takes_cost_model(&*cost), 1);
        assert_eq!(takes_cost_model(std::sync::Arc::clone(&cost)), 1);
    }

    #[test]
    fn caching_avoids_repeat_measurements() {
        let g = two_branch_graph();
        let cost = CachingCostModel::new(SimCostModel::new(Simulator::new(DeviceKind::TeslaV100)));
        let groups = vec![vec![OpId(0)], vec![OpId(1)]];
        let a = cost.concurrent_latency(&g, &groups);
        let b = cost.concurrent_latency(&g, &groups);
        assert_eq!(a, b);
        assert_eq!(cost.measurement_count(), 1);
        assert_eq!(cost.cache_hits(), 1);
        // Merge caching too.
        let merged = crate::merge::try_merge(&g, [OpId(0), OpId(1)].into_iter().collect()).unwrap();
        let m1 = cost.merge_latency(&g, &merged);
        let m2 = cost.merge_latency(&g, &merged);
        assert_eq!(m1, m2);
        assert_eq!(cost.cache_hits(), 2);
        assert!(cost.inner().measurement_count() >= 2);
    }
}
