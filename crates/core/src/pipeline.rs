//! Network-level pipeline planning.
//!
//! IOS (the dynamic program in [`crate::dp`]) exploits parallelism *within*
//! a block; blocks themselves are sequentially dependent, so a single
//! sample cannot run two blocks at once. A serving runtime, however, has
//! many samples in flight — and there, between-block parallelism across
//! batch instances is free capacity: partition the block sequence into
//! contiguous segments ([`SegmentPlan`]), give each segment a stage worker,
//! and stream samples through them so block `k` of sample `i + 1` overlaps
//! block `k + 1` of sample `i`.
//!
//! This module chooses those boundaries. The inputs are per-block latency
//! measurements from any [`CostModel`] — in production a
//! [`crate::ProfiledCostModel`] whose stage latencies were **measured on
//! the execution backend, under concurrent load** (an idle-machine profile
//! flatters long segments: serving neighbours steal cache and cores, which
//! the load-generating profiler reproduces). The planner runs the classic
//! contiguous-partition dynamic program (minimize the bottleneck segment)
//! for every admissible segment count, charges each hand-off its overhead,
//! and keeps the plan with the best predicted steady-state period:
//!
//! ```text
//! period(S) = max(bottleneck(S) + h, (total + S·h) / workers)
//! ```
//!
//! where `h` is the per-segment hand-off overhead. The single-segment plan
//! (flat execution) is always a candidate, so a host where pipelining
//! cannot win — one core, or a network dominated by one block — plans
//! itself back to flat execution.

use crate::cost_model::CostModel;
use crate::optimizer::{network_block_costs, NetworkSchedule};
use ios_ir::{Network, SegmentPlan};
use serde::{Deserialize, Serialize};

/// Per-segment hand-off overhead charged by the planner, in µs: one
/// channel send plus a worker wake-up on the measured hosts. Small against
/// any real block, but it breaks ties away from needlessly fine plans.
pub const SEGMENT_HANDOFF_US: f64 = 25.0;

/// A chosen pipeline: segment boundaries plus the measurements that chose
/// them and the predicted steady-state behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// The segment boundaries over the network's block list.
    pub segments: SegmentPlan,
    /// Measured latency of each block, in µs (the planner's input).
    pub block_costs_us: Vec<f64>,
    /// Latency of each segment (sum of its blocks), in µs.
    pub segment_costs_us: Vec<f64>,
    /// Worker budget the plan was chosen for (pipeline stage workers).
    pub workers: usize,
    /// Predicted steady-state per-sample period of the pipeline, in µs:
    /// `max(bottleneck + handoff, (total + segments·handoff) / workers)`.
    pub period_us: f64,
}

impl PipelinePlan {
    /// Builds the plan for an explicitly chosen segmentation (the planner
    /// normally picks one — this is the escape hatch for forced
    /// configurations and tests), deriving segment costs and the
    /// predicted period from the given per-block measurements.
    ///
    /// # Panics
    ///
    /// Panics if the segmentation does not cover `block_costs_us`.
    #[must_use]
    pub fn for_segments(block_costs_us: Vec<f64>, segments: SegmentPlan, workers: usize) -> Self {
        assert_eq!(
            segments.num_blocks(),
            block_costs_us.len(),
            "segment plan and block-cost counts differ"
        );
        let workers = workers.max(1);
        let segment_costs_us = segment_costs(&segments, &block_costs_us);
        let total: f64 = block_costs_us.iter().sum();
        let s = segments.num_segments();
        let handoff = if s > 1 { SEGMENT_HANDOFF_US } else { 0.0 };
        let bottleneck = segment_costs_us.iter().fold(0.0f64, |a, &b| a.max(b));
        let period_us = (bottleneck + handoff).max((total + s as f64 * handoff) / workers as f64);
        PipelinePlan {
            segments,
            block_costs_us,
            segment_costs_us,
            workers,
            period_us,
        }
    }

    /// Latency of the slowest segment, in µs.
    #[must_use]
    pub fn bottleneck_us(&self) -> f64 {
        self.segment_costs_us.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Sum of all block latencies (one sample, flat execution), in µs.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.block_costs_us.iter().sum()
    }

    /// Predicted per-sample wall time of **flat batched** execution at
    /// `batch` with this plan's full worker budget —
    /// [`PipelinePlan::flat_us_per_sample_with`] at `workers`.
    #[must_use]
    pub fn flat_us_per_sample(&self, batch: usize) -> f64 {
        self.flat_us_per_sample_with(batch, self.workers)
    }

    /// Predicted per-sample wall time of **flat batched** execution at
    /// `batch` over `flat_workers` sample workers: samples fan out
    /// one-per-worker, so a batch that does not divide the worker count
    /// pays a straggler round (`ceil(batch / flat_workers)` rounds of the
    /// full per-sample latency). A serving engine whose flat executor is
    /// capped below the host's cores (it splits them across dispatch
    /// workers) passes its actual cap here.
    #[must_use]
    pub fn flat_us_per_sample_with(&self, batch: usize, flat_workers: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let effective = flat_workers.max(1).min(batch);
        let rounds = batch.div_ceil(effective);
        rounds as f64 * self.total_us() / batch as f64
    }

    /// Whether the pipeline is predicted to out-serve flat batched
    /// execution at this batch size (with a 5 % margin — prediction noise
    /// must not flap the execution mode). A flat (single-segment) plan
    /// never prefers the pipeline.
    #[must_use]
    pub fn prefers_pipeline(&self, batch: usize) -> bool {
        self.prefers_pipeline_vs(batch, self.workers)
    }

    /// [`PipelinePlan::prefers_pipeline`] against a flat path capped at
    /// `flat_workers` sample workers — the comparison a serving engine
    /// makes, since its flat executor runs with the per-batch worker cap
    /// it was configured with, not the whole host.
    #[must_use]
    pub fn prefers_pipeline_vs(&self, batch: usize, flat_workers: usize) -> bool {
        !self.segments.is_flat()
            && batch >= 2
            && self.period_us * 1.05 < self.flat_us_per_sample_with(batch, flat_workers)
    }

    /// Predicted steady-state speedup of pipelined over flat batched
    /// execution at `batch` (> 1 means the pipeline wins).
    #[must_use]
    pub fn predicted_speedup(&self, batch: usize) -> f64 {
        if self.period_us <= 0.0 {
            return 1.0;
        }
        self.flat_us_per_sample(batch) / self.period_us
    }
}

/// The segment costs a plan implies for the given block costs.
fn segment_costs(plan: &SegmentPlan, block_costs: &[f64]) -> Vec<f64> {
    plan.segments()
        .map(|range| block_costs[range].iter().sum())
        .collect()
}

/// The contiguous partition of `block_costs` into exactly `segments`
/// parts that minimizes the bottleneck (maximum segment sum) — the
/// linear-partition dynamic program.
fn best_partition(block_costs: &[f64], segments: usize) -> SegmentPlan {
    let n = block_costs.len();
    let s = segments.clamp(1, n);
    // prefix[i] = sum of the first i costs.
    let mut prefix = vec![0.0f64; n + 1];
    for (i, &c) in block_costs.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let sum = |a: usize, b: usize| prefix[b] - prefix[a];
    // dp[k][i]: minimal bottleneck splitting the first i blocks into k+1
    // segments; cut[k][i]: the start of the last segment in that optimum.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; s];
    let mut cut = vec![vec![0usize; n + 1]; s];
    for (i, slot) in dp[0].iter_mut().enumerate().skip(1) {
        *slot = sum(0, i);
    }
    for k in 1..s {
        for i in (k + 1)..=n {
            for j in k..i {
                let candidate = dp[k - 1][j].max(sum(j, i));
                if candidate < dp[k][i] {
                    dp[k][i] = candidate;
                    cut[k][i] = j;
                }
            }
        }
    }
    let mut starts = vec![0usize; s];
    let mut end = n;
    for k in (1..s).rev() {
        starts[k] = cut[k][end];
        end = starts[k];
    }
    SegmentPlan::from_starts(n, starts).expect("partition DP produces valid boundaries")
}

/// Chooses pipeline segment boundaries for `network` executing under
/// `schedule`, measuring each block with `cost_model` and optimizing the
/// predicted steady-state period for `workers` stage workers.
///
/// `max_segments` caps the partition granularity; the default
/// (`None`) admits up to `2 × workers` segments — finer than the worker
/// count so the bottleneck can be split below `total / workers`, but not
/// so fine that hand-off overhead dominates.
///
/// The network and schedule should be the **per-sample (batch-1)**
/// instances: the pipeline executes one sample per job, whatever the
/// serving batch size.
///
/// # Panics
///
/// Panics if the network has no blocks or the schedule does not match it.
#[must_use]
pub fn plan_pipeline<C: CostModel>(
    network: &Network,
    schedule: &NetworkSchedule,
    cost_model: &C,
    workers: usize,
    max_segments: Option<usize>,
) -> PipelinePlan {
    assert!(!network.blocks.is_empty(), "cannot plan an empty network");
    let workers = workers.max(1);
    let block_costs = network_block_costs(network, schedule, cost_model);
    let limit = max_segments
        .unwrap_or(2 * workers)
        .clamp(1, network.blocks.len());

    let mut best: Option<PipelinePlan> = None;
    for s in 1..=limit {
        let segments = best_partition(&block_costs, s);
        let candidate = PipelinePlan::for_segments(block_costs.clone(), segments, workers);
        // Strict improvement required: ties keep the coarser plan.
        if best
            .as_ref()
            .is_none_or(|b| candidate.period_us < b.period_us)
        {
            best = Some(candidate);
        }
    }
    best.expect("at least the flat plan is admissible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::testing::UnitCostModel;
    use crate::optimizer::sequential_network_schedule;
    use ios_ir::{Block, Conv2dParams, GraphBuilder, TensorShape};

    /// A network of `per_block_ops`-op chain blocks; with the unit cost
    /// model every block costs the same, so partitions are predictable.
    fn chain_network(blocks: usize, per_block_ops: &[usize]) -> Network {
        let mut shape = TensorShape::new(1, 4, 8, 8);
        let input = shape;
        let mut out = Vec::new();
        for b in 0..blocks {
            let ops = per_block_ops[b % per_block_ops.len()];
            let mut g = GraphBuilder::new(format!("chain_b{b}"), shape);
            let mut v = g.input(0);
            for i in 0..ops {
                v = g.conv2d(
                    format!("b{b}_conv{i}"),
                    v,
                    Conv2dParams::relu(4, (3, 3), (1, 1), (1, 1)),
                );
            }
            let block = Block::new(g.build(vec![v]));
            shape = block.graph.output_shapes()[0];
            out.push(block);
        }
        Network::new("chain", input, out)
    }

    #[test]
    fn one_worker_plans_flat() {
        let net = chain_network(6, &[2]);
        let cost = UnitCostModel::default();
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 1, None);
        assert!(
            plan.segments.is_flat(),
            "one core cannot pipeline: {plan:?}"
        );
        assert!(!plan.prefers_pipeline(8));
        assert!((plan.period_us - plan.total_us()).abs() < 1e-9);
    }

    #[test]
    fn uniform_blocks_split_evenly_across_workers() {
        let net = chain_network(8, &[2]);
        // Realistically heavy blocks (≈ 1 ms each): the hand-off overhead
        // must not be what decides the comparison.
        let cost = UnitCostModel {
            base_us: 500.0,
            ..UnitCostModel::default()
        };
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 4, None);
        assert_eq!(plan.block_costs_us.len(), 8);
        assert!(
            plan.segments.num_segments() > 1,
            "four workers must pipeline eight uniform blocks: {plan:?}"
        );
        // Balanced segments: bottleneck close to total / segments.
        let ideal = plan.total_us() / plan.segments.num_segments() as f64;
        assert!(plan.bottleneck_us() <= ideal * 2.0 + 1e-9);
        // An odd batch on four workers leaves flat execution a straggler
        // round; the steady-state pipeline is predicted to win.
        assert!(plan.prefers_pipeline(5), "plan: {plan:?}");
        assert!(plan.predicted_speedup(5) > 1.05);
    }

    #[test]
    fn dominant_block_bounds_the_bottleneck() {
        // One block is 10x the rest: the partition must isolate it.
        let net = chain_network(5, &[1, 1, 10, 1, 1]);
        let cost = UnitCostModel::default();
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 4, None);
        let dominant = plan.block_costs_us[2];
        assert!(
            plan.bottleneck_us() < dominant * 1.5,
            "the dominant block must not share a segment with heavy neighbours: {plan:?}"
        );
        let segment = plan.segments.segment_of(2).unwrap();
        let range = plan.segments.segment(segment);
        assert!(range.len() <= 3, "dominant block segment stays small");
    }

    #[test]
    fn flat_prediction_models_the_straggler_round() {
        let net = chain_network(4, &[2]);
        let cost = UnitCostModel::default();
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 4, None);
        let total = plan.total_us();
        // batch 4 on 4 workers: one round.
        assert!((plan.flat_us_per_sample(4) - total / 4.0).abs() < 1e-9);
        // batch 5 on 4 workers: two rounds for five samples.
        assert!((plan.flat_us_per_sample(5) - 2.0 * total / 5.0).abs() < 1e-9);
        // batch below the worker count: every sample gets a worker.
        assert!((plan.flat_us_per_sample(2) - total / 2.0).abs() < 1e-9);
        assert!(!plan.prefers_pipeline(0));
        assert!(!plan.prefers_pipeline(1), "a lone sample cannot overlap");
    }

    #[test]
    fn capped_flat_path_tilts_the_comparison_toward_the_pipeline() {
        // A serving engine's flat executor may be capped below the host's
        // cores (it splits them across dispatch workers); the decision
        // must compare against that capped flat path, not the whole host.
        let net = chain_network(8, &[2]);
        let cost = UnitCostModel {
            base_us: 500.0,
            ..UnitCostModel::default()
        };
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 8, None);
        // Batch 8 over 8 flat workers is one perfect round: the pipeline
        // cannot beat it.
        assert!(!plan.prefers_pipeline(8), "plan: {plan:?}");
        // The same batch over a flat path capped at 2 workers pays 4
        // serial rounds: the pipeline wins easily.
        assert!(plan.prefers_pipeline_vs(8, 2));
        assert!(
            plan.flat_us_per_sample_with(8, 2) > plan.flat_us_per_sample(8) * 3.9,
            "the capped flat path is ~4x slower per sample"
        );
    }

    #[test]
    fn max_segments_caps_granularity() {
        let net = chain_network(8, &[2]);
        let cost = UnitCostModel::default();
        let schedule = sequential_network_schedule(&net, &cost);
        let plan = plan_pipeline(&net, &schedule, &cost, 4, Some(2));
        assert!(plan.segments.num_segments() <= 2);
    }
}
