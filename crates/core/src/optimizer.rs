//! Network-level optimization.
//!
//! Modern CNNs stack blocks, and blocks are sequentially dependent, so IOS
//! optimizes each block independently and concatenates the per-block
//! schedules (Section 4.2). This module provides that driver, the network
//! level baselines, and re-evaluation of an existing schedule under a
//! different cost model (the machinery behind the Table 3 specialization
//! study).

use crate::baselines::{greedy_schedule, sequential_schedule};
use crate::cost_model::CostModel;
use crate::dp::schedule_graph;
use crate::merge::try_merge;
use crate::schedule::{ParallelizationStrategy, Schedule};
use crate::variants::SchedulerConfig;
use ios_ir::Network;
use serde::{Deserialize, Serialize};

/// A schedule for every block of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSchedule {
    /// Name of the scheduled network.
    pub network_name: String,
    /// Human-readable label of how this schedule was produced
    /// (e.g. `"IOS-Both"`, `"Sequential"`, `"Greedy"`).
    pub label: String,
    /// One schedule per block, in block order.
    pub block_schedules: Vec<Schedule>,
    /// Predicted end-to-end latency in µs (sum of block latencies) under the
    /// cost model the schedule was produced with.
    pub latency_us: f64,
}

impl NetworkSchedule {
    /// End-to-end latency in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.latency_us / 1e3
    }

    /// Throughput in images per second for the given batch size.
    #[must_use]
    pub fn throughput(&self, batch: usize) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            batch as f64 / (self.latency_us / 1e6)
        }
    }

    /// Total number of stages across all blocks.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.block_schedules.iter().map(Schedule::num_stages).sum()
    }

    /// Validates every block schedule against the corresponding block graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, network: &Network) -> Result<(), String> {
        if self.block_schedules.len() != network.blocks.len() {
            return Err(format!(
                "schedule has {} block schedules, network has {} blocks",
                self.block_schedules.len(),
                network.blocks.len()
            ));
        }
        for (schedule, block) in self.block_schedules.iter().zip(&network.blocks) {
            schedule.validate(&block.graph)?;
        }
        Ok(())
    }
}

/// Search statistics of a network-level optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeReport {
    /// The optimized schedule.
    pub schedule: NetworkSchedule,
    /// Total `(S, S′)` transitions explored across all blocks.
    pub transitions: u64,
    /// Total dynamic-programming states across all blocks.
    pub states: u64,
    /// Total stage-latency measurements requested from the cost model.
    pub measurements: u64,
    /// Total stage-generation memo hits across all blocks (endings reused
    /// across DP states without re-deriving groups or re-measuring).
    pub stage_memo_hits: u64,
    /// Wall-clock search time in seconds.
    pub search_seconds: f64,
    /// Per-block latency in µs (used by the Figure 16 block-wise study).
    pub block_latencies_us: Vec<f64>,
}

/// Optimizes every block of `network` with the IOS dynamic program.
#[must_use]
pub fn optimize_network<C: CostModel>(
    network: &Network,
    cost_model: &C,
    config: &SchedulerConfig,
) -> OptimizeReport {
    let mut block_schedules = Vec::with_capacity(network.blocks.len());
    let mut block_latencies = Vec::with_capacity(network.blocks.len());
    let mut transitions = 0;
    let mut states = 0;
    let mut measurements = 0;
    let mut stage_memo_hits = 0;
    let mut search_seconds = 0.0;
    let mut total_latency = 0.0;

    let tracer = ios_telemetry::tracer();
    let mut network_span = tracer.span("optimize.network", "optimize");
    network_span.set_arg(network.blocks.len() as u64);

    for (block_index, block) in network.blocks.iter().enumerate() {
        let mut block_span = tracer.span("optimize.block", "optimize");
        block_span.set_id(block_index as u64);
        block_span.set_arg(block.graph.len() as u64);
        let result = schedule_graph(&block.graph, cost_model, config);
        transitions += result.transitions;
        states += result.states;
        measurements += result.measurements;
        stage_memo_hits += result.stage_memo_hits;
        search_seconds += result.search_seconds;
        total_latency += result.latency_us;
        block_latencies.push(result.latency_us);
        block_schedules.push(result.schedule);
    }

    OptimizeReport {
        schedule: NetworkSchedule {
            network_name: network.name.clone(),
            label: config.variant.to_string(),
            block_schedules,
            latency_us: total_latency,
        },
        transitions,
        states,
        measurements,
        stage_memo_hits,
        search_seconds,
        block_latencies_us: block_latencies,
    }
}

/// Builds the network-level sequential baseline schedule.
#[must_use]
pub fn sequential_network_schedule<C: CostModel>(
    network: &Network,
    cost_model: &C,
) -> NetworkSchedule {
    baseline_schedule(network, cost_model, "Sequential", sequential_schedule)
}

/// Builds the network-level greedy baseline schedule.
#[must_use]
pub fn greedy_network_schedule<C: CostModel>(network: &Network, cost_model: &C) -> NetworkSchedule {
    baseline_schedule(network, cost_model, "Greedy", greedy_schedule)
}

fn baseline_schedule<C: CostModel>(
    network: &Network,
    cost_model: &C,
    label: &str,
    build: impl Fn(&ios_ir::Graph, &C) -> Schedule,
) -> NetworkSchedule {
    let block_schedules: Vec<Schedule> = network
        .blocks
        .iter()
        .map(|b| build(&b.graph, cost_model))
        .collect();
    let latency_us = block_schedules
        .iter()
        .map(Schedule::total_measured_latency_us)
        .sum();
    NetworkSchedule {
        network_name: network.name.clone(),
        label: label.to_string(),
        block_schedules,
        latency_us,
    }
}

/// Re-measures an existing schedule's latency on (possibly) different
/// execution conditions: another batch size, device or kernel library.
///
/// The stage *structure* is kept; every stage is re-measured with
/// `cost_model` against the block graphs of `network` (which must have the
/// same operator structure as the network the schedule was produced for —
/// [`Network::with_batch_size`] guarantees this).
///
/// This is the primitive behind Table 3: a schedule specialized for batch 32
/// executed at batch 1 keeps its stage structure but pays batch-1 latencies.
#[must_use]
pub fn evaluate_network<C: CostModel>(
    network: &Network,
    schedule: &NetworkSchedule,
    cost_model: &C,
) -> f64 {
    network_block_costs(network, schedule, cost_model)
        .iter()
        .sum()
}

/// Re-measures an existing schedule block by block: element `i` is the
/// latency of block `i`'s stages under `cost_model`. This is the
/// measurement [`crate::pipeline::plan_pipeline`] partitions into pipeline
/// segments, and [`evaluate_network`] is its sum.
///
/// # Panics
///
/// Panics if the schedule and network block counts differ.
#[must_use]
pub fn network_block_costs<C: CostModel>(
    network: &Network,
    schedule: &NetworkSchedule,
    cost_model: &C,
) -> Vec<f64> {
    assert_eq!(
        network.blocks.len(),
        schedule.block_schedules.len(),
        "schedule and network block counts differ"
    );
    network
        .blocks
        .iter()
        .zip(&schedule.block_schedules)
        .map(|(block, block_schedule)| {
            block_schedule
                .stages
                .iter()
                .map(|stage| match stage.strategy {
                    ParallelizationStrategy::ConcurrentExecution => {
                        cost_model.concurrent_latency(&block.graph, &stage.groups)
                    }
                    ParallelizationStrategy::OperatorMerge => {
                        match try_merge(&block.graph, stage.ops) {
                            Some(merged) => cost_model.merge_latency(&block.graph, &merged),
                            // Fall back to concurrent execution if the stage
                            // is no longer mergeable (cannot happen for pure
                            // batch re-shaping, but keeps evaluation total).
                            None => cost_model.concurrent_latency(&block.graph, &stage.groups),
                        }
                    }
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::SimCostModel;
    use crate::variants::IosVariant;
    use ios_sim::{DeviceKind, Simulator};

    fn small_network() -> Network {
        // The Figure 2 block stacked twice keeps tests fast while exercising
        // the multi-block path.
        let single = ios_models::figure2_block(1);
        let block0 = single.blocks[0].clone();
        let out_shape = block0.graph.output_shapes()[0];
        let mut b = ios_ir::GraphBuilder::new("second", out_shape);
        let x = b.input(0);
        let a = b.conv2d(
            "a2",
            x,
            ios_ir::Conv2dParams::relu(256, (1, 1), (1, 1), (0, 0)),
        );
        let c = b.conv2d(
            "c2",
            x,
            ios_ir::Conv2dParams::relu(256, (3, 3), (1, 1), (1, 1)),
        );
        let cat = b.concat("cat2", &[a, c]);
        let block1 = ios_ir::Block::new(b.build(vec![cat]));
        Network::new("two_block", single.input_shape, vec![block0, block1])
    }

    #[test]
    fn optimize_network_beats_baselines() {
        let net = small_network();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let config = SchedulerConfig::paper_default();
        let report = optimize_network(&net, &cost, &config);
        assert!(report.schedule.validate(&net).is_ok());
        assert_eq!(report.block_latencies_us.len(), 2);

        let seq = sequential_network_schedule(&net, &cost);
        let greedy = greedy_network_schedule(&net, &cost);
        assert!(seq.validate(&net).is_ok());
        assert!(greedy.validate(&net).is_ok());
        assert!(report.schedule.latency_us <= seq.latency_us + 1e-6);
        assert!(report.schedule.latency_us <= greedy.latency_us + 1e-6);
        assert!(report.measurements > 0);
        assert!(report.transitions > 0);
    }

    #[test]
    fn throughput_and_latency_helpers() {
        let net = small_network();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let seq = sequential_network_schedule(&net, &cost);
        assert!(seq.latency_ms() > 0.0);
        let t1 = seq.throughput(1);
        let t8 = seq.throughput(8);
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
        assert!(seq.num_stages() >= net.num_operators());
    }

    #[test]
    fn evaluate_network_matches_original_measurement() {
        let net = small_network();
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let config = SchedulerConfig::for_variant(IosVariant::Parallel);
        let report = optimize_network(&net, &cost, &config);
        let re_evaluated = evaluate_network(&net, &report.schedule, &cost);
        assert!(
            (re_evaluated - report.schedule.latency_us).abs() / report.schedule.latency_us < 1e-9,
            "re-evaluated {re_evaluated}, original {}",
            report.schedule.latency_us
        );
    }

    #[test]
    fn evaluate_network_on_other_device_differs() {
        let net = small_network();
        let v100 = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let k80 = SimCostModel::new(Simulator::new(DeviceKind::TeslaK80));
        let report = optimize_network(&net, &v100, &SchedulerConfig::paper_default());
        let on_k80 = evaluate_network(&net, &report.schedule, &k80);
        assert!(
            on_k80 > report.schedule.latency_us,
            "K80 must be slower than V100"
        );
    }

    #[test]
    #[should_panic(expected = "block counts differ")]
    fn evaluate_rejects_mismatched_networks() {
        let net = small_network();
        let single = ios_models::figure2_block(1);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let report = optimize_network(&single, &cost, &SchedulerConfig::paper_default());
        let _ = evaluate_network(&net, &report.schedule, &cost);
    }
}
