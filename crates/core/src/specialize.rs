//! Schedule specialization (Table 3 of the paper).
//!
//! IOS profiles stages on the target device at the target batch size, so the
//! schedule it finds is specialized to that configuration. Table 3 shows
//! that executing a schedule under the configuration it was optimized for is
//! always the fastest option: a schedule tuned for batch 32 is sub-optimal
//! at batch 1, and a schedule tuned for a Tesla K80 is sub-optimal on a
//! V100. This module provides the cross-evaluation matrix behind that table.

use crate::cost_model::CostModel;
use crate::optimizer::{evaluate_network, NetworkSchedule};
use ios_ir::Network;
use serde::{Deserialize, Serialize};

/// One cell of the Table 3 cross-evaluation matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecializationCell {
    /// Label of the configuration the schedule was optimized for (column).
    pub optimized_for: String,
    /// Label of the configuration the schedule is executed on (row).
    pub executed_on: String,
    /// Measured latency in milliseconds.
    pub latency_ms: f64,
}

/// An execution context: a network instance (already shaped for the target
/// batch size) and the cost model of the target device.
pub struct ExecutionContext<'a, C: CostModel> {
    /// Label shown in the table (e.g. `"batch 32"` or `"V100"`).
    pub label: String,
    /// The network shaped for this context.
    pub network: &'a Network,
    /// The cost model of this context.
    pub cost_model: &'a C,
}

impl<'a, C: CostModel> ExecutionContext<'a, C> {
    /// Creates an execution context.
    #[must_use]
    pub fn new(label: impl Into<String>, network: &'a Network, cost_model: &'a C) -> Self {
        ExecutionContext {
            label: label.into(),
            network,
            cost_model,
        }
    }
}

/// Evaluates every schedule under every execution context.
///
/// Rows iterate over execution contexts and columns over schedules, exactly
/// like Table 3. The schedules' labels are taken from
/// [`NetworkSchedule::label`] unless overridden by `schedule_labels`.
#[must_use]
pub fn cross_evaluate<C: CostModel>(
    contexts: &[ExecutionContext<'_, C>],
    schedules: &[(String, &NetworkSchedule)],
) -> Vec<SpecializationCell> {
    let mut cells = Vec::with_capacity(contexts.len() * schedules.len());
    for ctx in contexts {
        for (label, schedule) in schedules {
            let latency_us = evaluate_network(ctx.network, schedule, ctx.cost_model);
            cells.push(SpecializationCell {
                optimized_for: label.clone(),
                executed_on: ctx.label.clone(),
                latency_ms: latency_us / 1e3,
            });
        }
    }
    cells
}

/// Checks the diagonal-dominance property of a cross-evaluation matrix: for
/// every execution context, the schedule optimized for that context is no
/// slower than any other schedule (within `tolerance`, a relative slack).
///
/// Returns the list of violations (empty when specialization always wins).
#[must_use]
pub fn specialization_violations(
    cells: &[SpecializationCell],
    tolerance: f64,
) -> Vec<SpecializationCell> {
    let mut violations = Vec::new();
    for cell in cells {
        if cell.optimized_for == cell.executed_on {
            continue;
        }
        let diagonal = cells
            .iter()
            .find(|c| c.executed_on == cell.executed_on && c.optimized_for == c.executed_on);
        if let Some(diag) = diagonal {
            if diag.latency_ms > cell.latency_ms * (1.0 + tolerance) {
                violations.push(cell.clone());
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::SimCostModel;
    use crate::optimizer::optimize_network;
    use crate::variants::SchedulerConfig;
    use ios_sim::{DeviceKind, Simulator};

    #[test]
    fn device_specialization_matrix_shape() {
        // Use the small Figure 2 network so this stays fast in debug builds;
        // the full Table 3 reproduction runs Inception V3 in the bench crate.
        let net = ios_models::figure2_block(1);
        let v100 = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let k80 = SimCostModel::new(Simulator::new(DeviceKind::TeslaK80));
        let config = SchedulerConfig::paper_default();

        let for_v100 = optimize_network(&net, &v100, &config).schedule;
        let for_k80 = optimize_network(&net, &k80, &config).schedule;

        let contexts = vec![
            ExecutionContext::new("V100", &net, &v100),
            ExecutionContext::new("K80", &net, &k80),
        ];
        let schedules = vec![
            ("V100".to_string(), &for_v100),
            ("K80".to_string(), &for_k80),
        ];
        let cells = cross_evaluate(&contexts, &schedules);
        assert_eq!(cells.len(), 4);

        // Diagonal dominance: each device prefers its own schedule.
        let violations = specialization_violations(&cells, 1e-9);
        assert!(violations.is_empty(), "violations: {violations:?}");

        // And the K80 is slower than the V100 overall.
        let v100_diag = cells
            .iter()
            .find(|c| c.executed_on == "V100" && c.optimized_for == "V100")
            .unwrap();
        let k80_diag = cells
            .iter()
            .find(|c| c.executed_on == "K80" && c.optimized_for == "K80")
            .unwrap();
        assert!(k80_diag.latency_ms > v100_diag.latency_ms);
    }

    #[test]
    fn batch_specialization_keeps_schedule_structure_valid() {
        let net1 = ios_models::figure2_block(1);
        let net32 = net1.with_batch_size(32);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let config = SchedulerConfig::paper_default();
        let for_b32 = optimize_network(&net32, &cost, &config).schedule;
        // The batch-32 schedule applies cleanly to the batch-1 network.
        assert!(for_b32.validate(&net1).is_ok());
        let latency_on_b1 = evaluate_network(&net1, &for_b32, &cost);
        assert!(latency_on_b1 > 0.0);
    }

    #[test]
    fn violation_detection_reports_offdiagonal_wins() {
        let cells = vec![
            SpecializationCell {
                optimized_for: "a".into(),
                executed_on: "a".into(),
                latency_ms: 10.0,
            },
            SpecializationCell {
                optimized_for: "b".into(),
                executed_on: "a".into(),
                latency_ms: 8.0,
            },
            SpecializationCell {
                optimized_for: "a".into(),
                executed_on: "b".into(),
                latency_ms: 9.0,
            },
            SpecializationCell {
                optimized_for: "b".into(),
                executed_on: "b".into(),
                latency_ms: 7.0,
            },
        ];
        let violations = specialization_violations(&cells, 0.0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].optimized_for, "b");
        assert_eq!(violations[0].executed_on, "a");
    }
}
