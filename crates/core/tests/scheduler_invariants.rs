//! Property tests pinning the dynamic program's optimality invariants on
//! randomized graphs:
//!
//! * the DP schedule's simulated cost never exceeds the sequential
//!   baseline's (the DP explores one-operator-per-stage partitions, so a
//!   correct minimization can only improve on them);
//! * the per-run stage memo fires on graphs with shared endings — wide
//!   Inception-style blocks reach the same ending from many states, so
//!   `GenerateStage` must be served from the memo, not re-derived.

use ios_core::{schedule_graph, sequential_schedule, SchedulerConfig, SimCostModel};
use ios_models::randwire::{randwire, RandWireConfig};
use ios_sim::{DeviceKind, Simulator};
use proptest::prelude::*;

/// An Inception-style block: `branches` parallel convolutions over a
/// shared input, concatenated — the shape that makes endings shared
/// between many DP states.
fn branchy_graph(branches: usize, channels: usize, spatial: usize) -> ios_ir::Graph {
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};
    let mut b = GraphBuilder::new(
        format!("prop_branchy_{branches}x{channels}"),
        TensorShape::new(1, channels, spatial, spatial),
    );
    let x = b.input(0);
    let kernels = [(1usize, 1usize), (3, 3), (5, 5)];
    let outs: Vec<_> = (0..branches)
        .map(|i| {
            let (kh, kw) = kernels[i % kernels.len()];
            b.conv2d(
                format!("branch{i}"),
                x,
                Conv2dParams::relu(channels, (kh, kw), (1, 1), (kh / 2, kw / 2)),
            )
        })
        .collect();
    let cat = b.concat("cat", &outs);
    b.build(vec![cat])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RandWire stages are adversarial for a scheduler: random small-world
    /// wiring with multi-input summations. Whatever the wiring, the DP's
    /// predicted latency must never lose to executing the operators one by
    /// one.
    #[test]
    fn dp_schedule_never_costs_more_than_sequential_on_randwire(
        seed in any::<u64>(),
        nodes in 4usize..9,
        p_percent in 0usize..100,
        channels in 8usize..17,
    ) {
        let net = randwire(1, RandWireConfig {
            nodes_per_stage: nodes,
            stages: 1,
            k: 2,
            p: p_percent as f64 / 100.0,
            channels,
            seed,
        });
        let graph = &net.blocks[0].graph;
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(graph, &cost, &SchedulerConfig::paper_default());
        prop_assert!(result.schedule.validate(graph).is_ok());
        let seq = sequential_schedule(graph, &cost).total_measured_latency_us();
        prop_assert!(
            result.latency_us <= seq + seq.abs() * 1e-9 + 1e-6,
            "DP latency {} must not exceed sequential {}",
            result.latency_us,
            seq
        );
    }

    /// Wide Inception-style blocks share single-operator (and wider)
    /// endings between many states: the DP must serve repeats from the
    /// stage memo, and still never lose to the sequential baseline.
    #[test]
    fn stage_memo_fires_on_shared_endings(
        branches in 2usize..6,
        channels in 4usize..13,
        spatial in 6usize..13,
    ) {
        let graph = branchy_graph(branches, channels, spatial);
        let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
        let result = schedule_graph(&graph, &cost, &SchedulerConfig::paper_default());
        prop_assert!(result.schedule.validate(&graph).is_ok());
        prop_assert!(
            result.stage_memo_hits > 0,
            "shared endings must hit the stage memo (transitions {}, states {})",
            result.transitions,
            result.states
        );
        prop_assert!(result.stage_memo_hits < result.transitions);
        let seq = sequential_schedule(&graph, &cost).total_measured_latency_us();
        prop_assert!(result.latency_us <= seq + seq.abs() * 1e-9 + 1e-6);
    }
}
