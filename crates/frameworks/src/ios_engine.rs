//! The IOS execution engine, packaged like the baseline frameworks so the
//! benchmark harness can compare them uniformly.

use ios_core::{optimize_network, NetworkSchedule, SchedulerConfig, SimCostModel};
use ios_ir::Network;
use ios_sim::{DeviceKind, Simulator};

/// IOS (scheduler + execution engine) bound to a device.
#[derive(Debug, Clone, Copy)]
pub struct IosEngine {
    device: DeviceKind,
    config: SchedulerConfig,
}

impl IosEngine {
    /// Creates the engine with the paper's default configuration
    /// (IOS-Both, pruning `r = 3`, `s = 8`, cuDNN kernels).
    #[must_use]
    pub fn new(device: DeviceKind) -> Self {
        IosEngine {
            device,
            config: SchedulerConfig::paper_default(),
        }
    }

    /// Creates the engine with an explicit scheduler configuration.
    #[must_use]
    pub fn with_config(device: DeviceKind, config: SchedulerConfig) -> Self {
        IosEngine { device, config }
    }

    /// The device the engine targets.
    #[must_use]
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Optimizes the network with IOS and returns the resulting schedule
    /// (whose `latency_us` is the measured end-to-end latency).
    #[must_use]
    pub fn optimize_and_measure(&self, network: &Network) -> NetworkSchedule {
        let cost = SimCostModel::new(Simulator::new(self.device));
        optimize_network(network, &cost, &self.config).schedule
    }

    /// Approximate profiling cost of optimizing the four benchmark networks,
    /// in GPU hours (Figure 12 reports ~3 hours for IOS).
    #[must_use]
    pub fn optimization_cost_gpu_hours() -> f64 {
        3.0
    }
}

/// Convenience: the IOS latency (µs) of a network on a device with the
/// default configuration.
#[must_use]
pub fn ios_latency_us(network: &Network, device: DeviceKind) -> f64 {
    IosEngine::new(device)
        .optimize_and_measure(network)
        .latency_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_core::IosVariant;

    #[test]
    fn engine_produces_valid_schedules() {
        let net = ios_models::figure2_block(1);
        let engine = IosEngine::new(DeviceKind::TeslaV100);
        let schedule = engine.optimize_and_measure(&net);
        assert!(schedule.validate(&net).is_ok());
        assert!(schedule.latency_us > 0.0);
        assert_eq!(engine.device(), DeviceKind::TeslaV100);
        assert!((ios_latency_us(&net, DeviceKind::TeslaV100) - schedule.latency_us).abs() < 1e-9);
    }

    #[test]
    fn custom_config_is_honoured() {
        let net = ios_models::figure2_block(1);
        let parallel_only = IosEngine::with_config(
            DeviceKind::TeslaV100,
            SchedulerConfig::for_variant(IosVariant::Parallel),
        );
        let schedule = parallel_only.optimize_and_measure(&net);
        assert!(schedule
            .block_schedules
            .iter()
            .flat_map(|s| &s.stages)
            .all(|s| s.strategy == ios_core::ParallelizationStrategy::ConcurrentExecution));
    }
}
