//! # ios-frameworks — simulated baseline deep-learning frameworks
//!
//! Figure 7, Figure 11 and Figure 12 of the paper compare IOS against
//! TensorFlow, TensorFlow-XLA, TASO, TVM-cuDNN, TensorRT and TVM-AutoTune.
//! None of those frameworks exist in this environment, so each baseline is
//! modeled as an *execution strategy* on the same `ios-sim` substrate,
//! reflecting the characteristic that matters for the comparison: they all
//! execute kernels **sequentially** (no inter-operator parallelism), and
//! they differ in kernel quality, graph rewrites and per-operator framework
//! overhead.
//!
//! | Baseline | Kernel library | Graph rewrites | Per-op host overhead |
//! |---|---|---|---|
//! | TensorFlow | cuDNN | none | high |
//! | TensorFlow-XLA | cuDNN | element-wise fusion | medium |
//! | TASO | cuDNN | merges same-type operators sharing an input | low |
//! | TVM-cuDNN | cuDNN (convs) | none | low |
//! | TensorRT | vendor/tuned | conv+activation fusion, kernel selection | very low |
//! | TVM-AutoTune | auto-tuned | none | low |
//!
//! The modeled optimization costs (`optimization_cost_gpu_hours`) reflect
//! the orders of magnitude the paper reports in Figure 12: IOS needs ~3 GPU
//! hours of profiling for all four networks while TVM's auto-tuning needs
//! ~208 GPU hours.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framework;
pub mod ios_engine;

pub use framework::{Framework, FrameworkKind, FrameworkResult};
pub use ios_engine::{ios_latency_us, IosEngine};

#[cfg(test)]
mod tests {
    use super::*;
    use ios_sim::DeviceKind;

    #[test]
    fn ios_beats_every_sequential_framework_on_branchy_blocks_at_batch_one() {
        // The core Figure 7 claim: on a real multi-branch Inception block at
        // batch one, IOS (inter-operator parallelism on plain cuDNN kernels)
        // beats every sequential cuDNN-based framework, including TensorRT
        // with its better kernels — by roughly 1.1-1.5×.
        let graph = ios_models::inception::inception_v3_last_block(1);
        let net = ios_ir::Network::new(
            "inception_c_block",
            graph.input_shapes()[0],
            vec![ios_ir::Block::new(graph)],
        );
        let device = DeviceKind::TeslaV100;
        let ios = IosEngine::new(device).optimize_and_measure(&net);
        for kind in FrameworkKind::cudnn_baselines() {
            let fw = Framework::new(*kind, device);
            let result = fw.measure(&net);
            let speedup = result.latency_us / ios.latency_us;
            assert!(
                speedup > 1.01,
                "IOS should beat {kind} at batch 1 (speedup = {speedup:.3})"
            );
            assert!(
                speedup < 3.5,
                "speedup over {kind} is implausibly large ({speedup:.3})"
            );
        }
    }

    #[test]
    fn tvm_autotune_wins_where_intra_op_parallelism_suffices() {
        // Figure 12's mechanism: TVM's auto-tuned kernels are much faster
        // than cuDNN for separable convolutions, so on workloads with little
        // inter-operator parallelism (a sequential chain of sepconvs) TVM
        // beats IOS; on wide Conv-Relu blocks the opposite holds because
        // only IOS can use the idle SMs.
        let device = DeviceKind::TeslaV100;
        let mut b =
            ios_ir::GraphBuilder::new("sepconv_chain", ios_ir::TensorShape::new(1, 128, 28, 28));
        let mut v = b.input(0);
        for i in 0..6 {
            v = b.sep_conv2d(
                format!("sep{i}"),
                v,
                ios_ir::Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)),
            );
        }
        let graph = b.build(vec![v]);
        let chain = ios_ir::Network::new(
            "sepconv_chain",
            graph.input_shapes()[0],
            vec![ios_ir::Block::new(graph)],
        );
        let ios = IosEngine::new(device).optimize_and_measure(&chain);
        let tvm = Framework::new(FrameworkKind::TvmAutoTune, device).measure(&chain);
        assert!(
            tvm.latency_us < ios.latency_us,
            "TVM-AutoTune ({}) should beat IOS ({}) on a sepconv chain",
            tvm.latency_us,
            ios.latency_us
        );

        // Wide Conv-Relu block: IOS wins despite TVM's kernel advantage.
        let fig2 = ios_models::figure2_block(1);
        let ios_wide = IosEngine::new(device).optimize_and_measure(&fig2);
        let tvm_wide = Framework::new(FrameworkKind::TvmAutoTune, device).measure(&fig2);
        assert!(
            ios_wide.latency_us < tvm_wide.latency_us,
            "IOS ({}) should beat TVM-AutoTune ({}) on a wide Conv-Relu block",
            ios_wide.latency_us,
            tvm_wide.latency_us
        );
    }

    #[test]
    fn optimization_cost_gap_matches_figure12() {
        let ios_cost = IosEngine::optimization_cost_gpu_hours();
        let tvm_cost = FrameworkKind::TvmAutoTune.optimization_cost_gpu_hours();
        assert!(
            tvm_cost / ios_cost > 50.0,
            "TVM tuning must be orders of magnitude costlier"
        );
    }
}
