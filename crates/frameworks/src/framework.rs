//! Baseline framework models.

use ios_core::{sequential_network_schedule, SimCostModel};
use ios_ir::{Conv2dParams, Graph, Network, OpId, OpKind, Value};
use ios_sim::{DeviceKind, ExecutionOverheads, KernelLibrary, MeasureConfig, Simulator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The baseline frameworks of Figure 7 / Figure 11 / Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// TensorFlow with stock cuDNN kernels and high per-op overhead.
    TensorFlow,
    /// TensorFlow with XLA: element-wise operators are fused away.
    TensorFlowXla,
    /// TASO: graph substitutions (merging same-type operators that share an
    /// input) on top of cuDNN, executed sequentially.
    Taso,
    /// TVM compiling convolutions to cuDNN calls.
    TvmCuDnn,
    /// TensorRT: fused conv+activation, tuned kernel selection.
    TensorRt,
    /// TVM with auto-tuned (Ansor-style) kernels — the intra-operator
    /// parallelism specialist of Figure 12.
    TvmAutoTune,
}

impl FrameworkKind {
    /// All cuDNN-based baselines of Figure 7 (excludes TVM-AutoTune, which
    /// the paper compares separately in Figure 12).
    #[must_use]
    pub fn cudnn_baselines() -> &'static [FrameworkKind] {
        &[
            FrameworkKind::TensorFlow,
            FrameworkKind::TensorFlowXla,
            FrameworkKind::Taso,
            FrameworkKind::TvmCuDnn,
            FrameworkKind::TensorRt,
        ]
    }

    /// Every modeled framework.
    #[must_use]
    pub fn all() -> &'static [FrameworkKind] {
        &[
            FrameworkKind::TensorFlow,
            FrameworkKind::TensorFlowXla,
            FrameworkKind::Taso,
            FrameworkKind::TvmCuDnn,
            FrameworkKind::TensorRt,
            FrameworkKind::TvmAutoTune,
        ]
    }

    /// The kernel library the framework executes with.
    #[must_use]
    pub fn library(self) -> KernelLibrary {
        match self {
            FrameworkKind::TensorFlow
            | FrameworkKind::TensorFlowXla
            | FrameworkKind::Taso
            | FrameworkKind::TvmCuDnn => KernelLibrary::CuDnn,
            FrameworkKind::TensorRt => KernelLibrary::TensorRt,
            FrameworkKind::TvmAutoTune => KernelLibrary::TvmAutoTuned,
        }
    }

    /// Host-side overheads of the framework's executor.
    #[must_use]
    pub fn overheads(self) -> ExecutionOverheads {
        match self {
            FrameworkKind::TensorFlow => ExecutionOverheads::new(14.0, 0.0),
            FrameworkKind::TensorFlowXla => ExecutionOverheads::new(8.0, 0.0),
            FrameworkKind::Taso => ExecutionOverheads::new(4.0, 0.0),
            FrameworkKind::TvmCuDnn => ExecutionOverheads::new(4.0, 0.0),
            FrameworkKind::TensorRt => ExecutionOverheads::new(2.5, 0.0),
            FrameworkKind::TvmAutoTune => ExecutionOverheads::new(4.0, 0.0),
        }
    }

    /// True if the framework fuses standalone element-wise operators
    /// (ReLU, Add, Identity) into their producers.
    #[must_use]
    pub fn fuses_elementwise(self) -> bool {
        matches!(
            self,
            FrameworkKind::TensorFlowXla
                | FrameworkKind::Taso
                | FrameworkKind::TensorRt
                | FrameworkKind::TvmAutoTune
        )
    }

    /// True if the framework merges same-type convolutions that share an
    /// input (TASO's horizontal graph substitution).
    #[must_use]
    pub fn merges_shared_input_convs(self) -> bool {
        matches!(self, FrameworkKind::Taso)
    }

    /// Approximate optimization cost for the four benchmark networks, in GPU
    /// hours (Figure 12's right panel: TVM ≈ 208 h, the cuDNN-based
    /// frameworks are essentially free, IOS ≈ 3 h).
    #[must_use]
    pub fn optimization_cost_gpu_hours(self) -> f64 {
        match self {
            FrameworkKind::TvmAutoTune => 208.0,
            FrameworkKind::TensorRt => 0.5,
            FrameworkKind::Taso => 0.3,
            _ => 0.05,
        }
    }
}

impl fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FrameworkKind::TensorFlow => "Tensorflow",
            FrameworkKind::TensorFlowXla => "Tensorflow-XLA",
            FrameworkKind::Taso => "TASO",
            FrameworkKind::TvmCuDnn => "TVM-cuDNN",
            FrameworkKind::TensorRt => "TensorRT",
            FrameworkKind::TvmAutoTune => "TVM-AutoTune",
        };
        write!(f, "{name}")
    }
}

/// Result of executing a network with a baseline framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkResult {
    /// Framework label.
    pub framework: String,
    /// Network name.
    pub network: String,
    /// End-to-end latency in µs.
    pub latency_us: f64,
    /// Throughput in images/s for the network's batch size.
    pub throughput: f64,
    /// Number of kernels launched after the framework's graph rewrites.
    pub kernels: usize,
}

/// A baseline framework bound to a device.
#[derive(Debug)]
pub struct Framework {
    kind: FrameworkKind,
    simulator: Simulator,
}

impl Framework {
    /// Creates the framework model for a device preset.
    #[must_use]
    pub fn new(kind: FrameworkKind, device: DeviceKind) -> Self {
        let simulator = Simulator::with_settings(
            device.spec(),
            kind.library(),
            kind.overheads(),
            MeasureConfig::deterministic(),
        );
        Framework { kind, simulator }
    }

    /// The framework kind.
    #[must_use]
    pub fn kind(&self) -> FrameworkKind {
        self.kind
    }

    /// Executes (sequentially) the network after applying the framework's
    /// graph rewrites, and reports latency and throughput.
    #[must_use]
    pub fn measure(&self, network: &Network) -> FrameworkResult {
        let batch = network.input_shape.batch;
        let mut latency = 0.0;
        let mut kernels = 0;
        let cost = SimCostModel::new(Simulator::with_settings(
            self.simulator.device().clone(),
            self.kind.library(),
            self.kind.overheads(),
            MeasureConfig::deterministic(),
        ));
        for block in &network.blocks {
            let rewritten = self.rewrite(&block.graph);
            let schedule = sequential_network_schedule(
                &Network::new(
                    rewritten.name(),
                    network.input_shape,
                    vec![ios_ir::Block::new(rewritten.clone())],
                ),
                &cost,
            );
            latency += schedule.latency_us;
            kernels += rewritten.len();
        }
        FrameworkResult {
            framework: self.kind.to_string(),
            network: network.name.clone(),
            latency_us: latency,
            throughput: if latency > 0.0 {
                batch as f64 / (latency / 1e6)
            } else {
                0.0
            },
            kernels,
        }
    }

    /// Applies the framework's graph rewrites to one block graph.
    #[must_use]
    pub fn rewrite(&self, graph: &Graph) -> Graph {
        let mut rewritten = graph.clone();
        if self.kind.merges_shared_input_convs() {
            rewritten = merge_shared_input_convs(&rewritten);
        }
        if self.kind.fuses_elementwise() {
            rewritten = fuse_elementwise(&rewritten);
        }
        rewritten
    }
}

/// Removes standalone element-wise operators (ReLU, Identity, Add with one
/// input) by forwarding their input, modeling XLA/TensorRT fusion.
fn fuse_elementwise(graph: &Graph) -> Graph {
    use ios_ir::GraphBuilder;
    let mut b = GraphBuilder::with_inputs(graph.name(), graph.input_shapes().to_vec());
    let mut mapping: Vec<Option<Value>> = vec![None; graph.len()];
    let resolve = |v: &Value, mapping: &[Option<Value>]| -> Value {
        match v {
            Value::Input(i) => Value::Input(*i),
            Value::Op(id) => mapping[id.index()].expect("producer already processed"),
        }
    };
    for op in graph.ops() {
        let fused_away = matches!(op.kind, OpKind::Relu | OpKind::Identity)
            || (matches!(op.kind, OpKind::Add) && op.inputs.len() == 1);
        if fused_away {
            mapping[op.id.index()] = Some(resolve(&op.inputs[0], &mapping));
            continue;
        }
        let inputs: Vec<Value> = op.inputs.iter().map(|v| resolve(v, &mapping)).collect();
        mapping[op.id.index()] = Some(b.add(op.name.clone(), op.kind.clone(), &inputs));
    }
    let outputs: Vec<Value> = graph
        .outputs()
        .iter()
        .map(|v| resolve(v, &mapping))
        .collect();
    b.build(outputs)
}

/// Merges groups of dense convolutions that share the same input value, the
/// same kernel size and the same stride into one wider convolution (TASO's
/// "merge conv" substitution). Downstream consumers read the merged tensor
/// through an added split-like 1×1 view; for latency purposes the merged
/// convolution plus the original concat structure is what matters, so the
/// rewrite keeps per-consumer `Identity` taps.
fn merge_shared_input_convs(graph: &Graph) -> Graph {
    use ios_ir::GraphBuilder;
    use std::collections::HashMap;

    // Group candidate convs by (input value, kernel, stride, activation).
    type SharedConvKey = (Value, (usize, usize), (usize, usize), bool);
    let mut groups: HashMap<SharedConvKey, Vec<OpId>> = HashMap::new();
    for op in graph.ops() {
        if let OpKind::Conv2d(p) = &op.kind {
            if p.groups == 1 && op.inputs.len() == 1 {
                groups
                    .entry((op.inputs[0], p.kernel, p.stride, p.activation.is_some()))
                    .or_default()
                    .push(op.id);
            }
        }
    }
    let merged_groups: Vec<Vec<OpId>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    if merged_groups.is_empty() {
        return graph.clone();
    }
    let mut group_of: HashMap<OpId, usize> = HashMap::new();
    for (gi, g) in merged_groups.iter().enumerate() {
        for op in g {
            group_of.insert(*op, gi);
        }
    }

    let mut b = GraphBuilder::with_inputs(graph.name(), graph.input_shapes().to_vec());
    let mut mapping: Vec<Option<Value>> = vec![None; graph.len()];
    let mut merged_built: HashMap<usize, Value> = HashMap::new();
    let resolve = |v: &Value, mapping: &[Option<Value>]| -> Value {
        match v {
            Value::Input(i) => Value::Input(*i),
            Value::Op(id) => mapping[id.index()].expect("producer already processed"),
        }
    };

    for op in graph.ops() {
        if let Some(&gi) = group_of.get(&op.id) {
            let members = &merged_groups[gi];
            // Build the merged convolution the first time a member is seen.
            merged_built.entry(gi).or_insert_with(|| {
                let first = graph.op(members[0]);
                let params = match &first.kind {
                    OpKind::Conv2d(p) => *p,
                    _ => unreachable!("group members are convolutions"),
                };
                let total_out: usize = members
                    .iter()
                    .map(|m| match &graph.op(*m).kind {
                        OpKind::Conv2d(p) => p.out_channels,
                        _ => 0,
                    })
                    .sum();
                let merged_params = Conv2dParams {
                    out_channels: total_out,
                    ..params
                };
                let input = resolve(&first.inputs[0], &mapping);
                let merged = b.conv2d(format!("merged_{}", first.name), input, merged_params);
                merged
            });
            let merged = merged_built[&gi];
            // Each original output becomes an identity view of the merged
            // tensor (channel slicing does not change the cost model's view
            // of downstream operators materially).
            mapping[op.id.index()] = Some(b.identity(format!("view_{}", op.name), merged));
            continue;
        }
        let inputs: Vec<Value> = op.inputs.iter().map(|v| resolve(v, &mapping)).collect();
        mapping[op.id.index()] = Some(b.add(op.name.clone(), op.kind.clone(), &inputs));
    }
    let outputs: Vec<Value> = graph
        .outputs()
        .iter()
        .map(|v| resolve(v, &mapping))
        .collect();
    b.build(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sets() {
        assert_eq!(FrameworkKind::TensorRt.to_string(), "TensorRT");
        assert_eq!(FrameworkKind::cudnn_baselines().len(), 5);
        assert_eq!(FrameworkKind::all().len(), 6);
        assert!(FrameworkKind::TvmAutoTune.library() == KernelLibrary::TvmAutoTuned);
    }

    #[test]
    fn xla_fuses_elementwise_ops() {
        let net = ios_models::resnet50(1);
        let fw = Framework::new(FrameworkKind::TensorFlowXla, DeviceKind::TeslaV100);
        let block = &net.blocks[1].graph;
        let rewritten = fw.rewrite(block);
        assert!(
            rewritten.len() < block.len(),
            "XLA should remove standalone ReLU/Identity ops"
        );
        assert!(rewritten.validate().is_ok());
    }

    #[test]
    fn taso_merges_parallel_same_shape_convs() {
        // The Figure 2 block has two pairs of identical-shape convolutions
        // sharing the input; TASO merges each pair.
        let net = ios_models::figure2_block(1);
        let fw = Framework::new(FrameworkKind::Taso, DeviceKind::TeslaV100);
        let block = &net.blocks[0].graph;
        let rewritten = fw.rewrite(block);
        let convs = rewritten
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count();
        // All four convolutions share the input, kernel size and stride, so
        // TASO's substitution collapses them into a single wide convolution.
        assert_eq!(
            convs, 1,
            "four identical-shape convolutions should merge into one"
        );
        assert!(rewritten.validate().is_ok());
    }

    #[test]
    fn framework_latency_ordering_is_sensible() {
        // TensorFlow (heavy overhead, no fusion) must be the slowest cuDNN
        // baseline; TensorRT must be the fastest.
        let net = ios_models::squeezenet(1);
        let device = DeviceKind::TeslaV100;
        let tf = Framework::new(FrameworkKind::TensorFlow, device).measure(&net);
        let xla = Framework::new(FrameworkKind::TensorFlowXla, device).measure(&net);
        let trt = Framework::new(FrameworkKind::TensorRt, device).measure(&net);
        assert!(tf.latency_us > xla.latency_us);
        assert!(xla.latency_us > trt.latency_us);
        assert!(trt.throughput > tf.throughput);
        assert!(trt.kernels <= tf.kernels);
    }

    #[test]
    fn measure_reports_kernel_counts() {
        let net = ios_models::figure2_block(1);
        let trt = Framework::new(FrameworkKind::TensorRt, DeviceKind::TeslaV100).measure(&net);
        assert!(trt.kernels >= 2);
        assert_eq!(trt.network, "figure2");
    }
}
