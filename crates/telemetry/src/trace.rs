//! A lightweight span/event tracer.
//!
//! Instrumentation sites call [`Tracer::span`] (timed, recorded on guard
//! drop), [`Tracer::instant`] (a point event) or [`Tracer::record_span_at`]
//! (a span whose start is back-dated, for lifecycles that began on another
//! thread). Records land in a bounded ring buffer sharded by thread:
//! recording never blocks on a reader and never reorders records written by
//! one thread — each record carries a global sequence number and the
//! writer's thread id, so within a thread both `seq` and `start_ns` are
//! monotone.
//!
//! When the tracer is **disabled** (the default for the process-global
//! [`tracer()`]), a span site costs one relaxed atomic load — no clock
//! read, no allocation, no lock — which is what lets the serving hot loop
//! stay permanently instrumented. The telemetry CI gate
//! (`bench/src/bin/telemetry_gate.rs`) holds that cost under 2 % of the
//! serving hot loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A timed interval (`start_ns` + `dur_ns`).
    Span,
    /// A point event (`dur_ns` = 0).
    Instant,
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global record sequence number (monotone per thread).
    pub seq: u64,
    /// Site name, e.g. `"stage.concurrent"`.
    pub name: &'static str,
    /// Category lane, e.g. `"exec"`, `"pipeline"`, `"serve"`.
    pub cat: &'static str,
    /// Span or instant.
    pub kind: TraceKind,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Primary correlation id (request id, batch id, segment index, …);
    /// meaning is per site.
    pub id: u64,
    /// Secondary payload (batch size, group count, …); meaning is per site.
    pub arg: u64,
}

/// Ring shards: recording threads map to shards by thread id, so two
/// threads contend on a shard lock only when they hash together — and
/// never with a reader for long (readers clone and release).
const SHARDS: usize = 16;

#[derive(Default)]
struct Ring {
    records: std::collections::VecDeque<TraceRecord>,
}

/// A bounded span/event recorder. See the [module docs](self).
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    seq: AtomicU64,
    per_shard_capacity: usize,
    shards: [Mutex<Ring>; SHARDS],
    dropped: AtomicU64,
}

/// Default total ring capacity of the process-global tracer, in records.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The recording thread's small dense id (assigned on first use).
fn current_tid() -> u64 {
    TID.with(|t| *t)
}

impl Tracer {
    /// A disabled tracer retaining at most `capacity` records (rounded up
    /// to a multiple of the shard count).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            shards: std::array::from_fn(|_| Mutex::new(Ring::default())),
            dropped: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off. Span guards created while disabled stay
    /// inert even if the tracer is enabled before they drop (they took no
    /// start timestamp).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether spans are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer's construction — the time base of
    /// every record.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Starts a timed span; the interval ends (and the record is written)
    /// when the returned guard drops. When the tracer is disabled this
    /// costs one atomic load and returns an inert guard.
    #[must_use]
    pub fn span(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        if self.is_enabled() {
            Span {
                tracer: Some(self),
                name,
                cat,
                id: 0,
                arg: 0,
                start_ns: self.now_ns(),
            }
        } else {
            Span {
                tracer: None,
                name,
                cat,
                id: 0,
                arg: 0,
                start_ns: 0,
            }
        }
    }

    /// Records a point event.
    pub fn instant(&self, name: &'static str, cat: &'static str, id: u64) {
        if self.is_enabled() {
            let start_ns = self.now_ns();
            self.push(name, cat, TraceKind::Instant, start_ns, 0, id, 0);
        }
    }

    /// Records a span whose start is back-dated — e.g. a request's queue
    /// wait, whose beginning was observed on the submitting thread but
    /// whose record is written at dispatch.
    pub fn record_span_at(
        &self,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        dur_ns: u64,
        id: u64,
        arg: u64,
    ) {
        if self.is_enabled() {
            self.push(name, cat, TraceKind::Span, start_ns, dur_ns, id, arg);
        }
    }

    #[allow(clippy::too_many_arguments)] // private; mirrors TraceRecord's fields
    fn push(
        &self,
        name: &'static str,
        cat: &'static str,
        kind: TraceKind,
        start_ns: u64,
        dur_ns: u64,
        id: u64,
        arg: u64,
    ) {
        let tid = current_tid();
        let record = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            name,
            cat,
            kind,
            start_ns,
            dur_ns,
            tid,
            id,
            arg,
        };
        let mut shard = self.shards[(tid as usize) % SHARDS]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.records.len() >= self.per_shard_capacity {
            shard.records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.records.push_back(record);
    }

    /// A copy of every retained record, sorted by `(start_ns, seq)`.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            out.extend(shard.records.iter().copied());
        }
        out.sort_by_key(|r| (r.start_ns, r.seq));
        out
    }

    /// Discards every retained record (counters keep running).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .records
                .clear();
        }
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// A live span: the interval from its creation to its drop. Inert (and
/// nearly free) when the tracer was disabled at creation.
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    cat: &'static str,
    id: u64,
    arg: u64,
    start_ns: u64,
}

impl Span<'_> {
    /// Sets the span's correlation id (request, batch, segment, …).
    pub fn set_id(&mut self, id: u64) {
        self.id = id;
    }

    /// Sets the span's secondary payload (batch size, group count, …).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            let dur_ns = tracer.now_ns().saturating_sub(self.start_ns);
            tracer.push(
                self.name,
                self.cat,
                TraceKind::Span,
                self.start_ns,
                dur_ns,
                self.id,
                self.arg,
            );
        }
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("live", &self.tracer.is_some())
            .finish()
    }
}

/// The process-global tracer every instrumentation site in the workspace
/// records against. Disabled by default; `ServeEngine` users (and the
/// `observe_demo` example) enable it around the window they want a trace
/// of, then export with [`crate::chrome_trace_json`].
#[must_use]
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::with_capacity(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::with_capacity(64);
        {
            let mut span = t.span("noop", "test");
            span.set_id(1);
        }
        t.instant("noop", "test", 2);
        t.record_span_at("noop", "test", 0, 5, 3, 0);
        assert!(t.records().is_empty());
    }

    #[test]
    fn spans_record_on_drop_with_ids() {
        let t = Tracer::with_capacity(64);
        t.set_enabled(true);
        {
            let mut span = t.span("work", "test");
            span.set_id(42);
            span.set_arg(7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let records = t.records();
        assert_eq!(records.len(), 1);
        let r = records[0];
        assert_eq!(r.name, "work");
        assert_eq!(r.cat, "test");
        assert_eq!(r.kind, TraceKind::Span);
        assert_eq!(r.id, 42);
        assert_eq!(r.arg, 7);
        assert!(r.dur_ns >= 1_000_000, "slept ≥ 1 ms, got {} ns", r.dur_ns);
    }

    #[test]
    fn guards_created_while_disabled_stay_inert() {
        let t = Tracer::with_capacity(64);
        let span = t.span("early", "test");
        t.set_enabled(true);
        drop(span);
        assert!(
            t.records().is_empty(),
            "a span that took no start timestamp must not record"
        );
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let t = Tracer::with_capacity(SHARDS); // one record per shard
        t.set_enabled(true);
        for i in 0..100 {
            t.instant("e", "test", i);
        }
        // All 100 came from one thread → one shard → capacity 1 survives.
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, 99, "the newest record survives");
        assert_eq!(t.dropped(), 99);
    }

    #[test]
    fn within_a_thread_records_never_reorder() {
        // All 500 records land on one thread → one shard, so size the ring
        // for a 500-record shard.
        let t = Tracer::with_capacity(500 * SHARDS);
        t.set_enabled(true);
        for i in 0..500 {
            t.instant("tick", "test", i);
        }
        let records = t.records();
        assert_eq!(records.len(), 500);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(records.windows(2).all(|w| w[0].id < w[1].id));
        assert!(records.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
}
