//! Prometheus text-format exposition.
//!
//! Small append-style helpers building a [text-format] exposition into a
//! `String`: each metric gets its `# HELP` / `# TYPE` header, histograms
//! expose the cumulative `_bucket{le="…"}` series plus `_sum` and
//! `_count`. Durations recorded in nanoseconds are exposed in
//! microseconds (the unit the serving metrics quote everywhere else), so
//! `le` boundaries and sums read naturally next to the latency
//! percentiles.
//!
//! [text-format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;

/// Appends a monotone counter.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a gauge.
pub fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends an info-style gauge: one constant-`1` sample per label set,
/// carrying build/runtime facts in the labels (the `foo_info` idiom, e.g.
/// `ios_simd_kernel{path="f32",isa="avx2"} 1`). Label values must not
/// contain `"` or `\` — these helpers do no escaping.
pub fn info(out: &mut String, name: &str, help: &str, series: &[&[(&str, &str)]]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for labels in series {
        let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        let _ = writeln!(out, "{name}{{{}}} 1", rendered.join(","));
    }
}

/// Appends a histogram whose recorded values are nanoseconds, exposed in
/// microseconds. `name` should end in `_us` by convention.
pub fn histogram_us(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (upper_ns, cumulative) in snap.cumulative() {
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            upper_ns as f64 / 1e3
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {}", snap.sum as f64 / 1e3);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

/// Checks that `text` is well-formed Prometheus text format: every
/// non-comment line is `name[{labels}] value`, every series is preceded by
/// a `# TYPE` for its base name, histogram bucket counts are cumulative,
/// and `_count` matches the `+Inf` bucket. Returns the number of samples.
///
/// This is the validator the acceptance gate and tests run over
/// `ServeEngine::prometheus_text()` output.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, f64, u64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value on sample line {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return Err(format!("line {lineno}: series {name} has no # TYPE"));
        }
        if name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {lineno}: bucket without an le label"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: malformed le label {labels:?}"))?;
            let le: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("line {lineno}: unparseable le {le:?}"))?
            };
            if let Some((prev_name, prev_le, prev_count)) = &last_bucket {
                if prev_name == base {
                    if *prev_le >= le {
                        return Err(format!("line {lineno}: le boundaries must ascend"));
                    }
                    if *prev_count > value as u64 {
                        return Err(format!("line {lineno}: bucket counts must be cumulative"));
                    }
                }
            }
            last_bucket = Some((base.to_string(), le, value as u64));
        } else if name.ends_with("_count")
            && typed.get(base).map(String::as_str) == Some("histogram")
        {
            if let Some((prev_name, le, count)) = &last_bucket {
                if prev_name == base && le.is_infinite() && *count != value as u64 {
                    return Err(format!(
                        "line {lineno}: {name} ({value}) disagrees with the +Inf bucket ({count})"
                    ));
                }
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn exposition_validates_and_reads_back() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 2_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        counter(&mut out, "ios_requests_total", "Requests answered.", 5);
        gauge(&mut out, "ios_queue_depth", "Queued requests.", 2.0);
        histogram_us(
            &mut out,
            "ios_request_latency_us",
            "Request latency in microseconds.",
            &h.snapshot(),
        );
        let samples = validate(&out).expect("well-formed exposition");
        assert!(samples >= 2 + 4 + 2, "got {samples} samples:\n{out}");
        assert!(out.contains("ios_request_latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("ios_request_latency_us_count 5"));
        // Sum is exact: 1055 µs of recorded nanoseconds.
        assert!(out.contains("ios_request_latency_us_sum 1055"));
    }

    #[test]
    fn info_gauge_emits_one_series_per_label_set_and_validates() {
        let mut out = String::new();
        info(
            &mut out,
            "ios_simd_kernel",
            "Selected microkernel ISA per numeric path.",
            &[
                &[("path", "f32"), ("isa", "avx2")],
                &[("path", "int8"), ("isa", "avx2")],
            ],
        );
        assert!(out.contains("# TYPE ios_simd_kernel gauge"));
        assert!(out.contains("ios_simd_kernel{path=\"f32\",isa=\"avx2\"} 1"));
        assert!(out.contains("ios_simd_kernel{path=\"int8\",isa=\"avx2\"} 1"));
        assert_eq!(validate(&out), Ok(2));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate("ios_untyped 3").is_err());
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"two\"} 1").is_err());
        let non_cumulative = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(validate(non_cumulative).is_err());
        let count_mismatch = "# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 5\nh_count 4\n";
        assert!(validate(count_mismatch).is_err());
    }
}
