//! Prometheus text-format exposition.
//!
//! Small append-style helpers building a [text-format] exposition into a
//! `String`: each metric gets its `# HELP` / `# TYPE` header, histograms
//! expose the cumulative `_bucket{le="…"}` series plus `_sum` and
//! `_count`. Durations recorded in nanoseconds are exposed in
//! microseconds (the unit the serving metrics quote everywhere else), so
//! `le` boundaries and sums read naturally next to the latency
//! percentiles.
//!
//! [text-format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;

/// Appends a monotone counter.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a gauge.
pub fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends an info-style gauge: one constant-`1` sample per label set,
/// carrying build/runtime facts in the labels (the `foo_info` idiom, e.g.
/// `ios_simd_kernel{path="f32",isa="avx2"} 1`). Label values must not
/// contain `"` or `\` — these helpers do no escaping.
pub fn info(out: &mut String, name: &str, help: &str, series: &[&[(&str, &str)]]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for labels in series {
        let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        let _ = writeln!(out, "{name}{{{}}} 1", rendered.join(","));
    }
}

/// Renders a label set as `k="v",…`. No escaping: values must not contain
/// `"`, `\` or `,` (same contract as [`info`]).
fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<String>>()
        .join(",")
}

/// Appends a counter family: one `# HELP` / `# TYPE` header, then one
/// labelled sample per entry (e.g. per-tenant `…_total{tenant="…"}`
/// series). Label values must not contain `"`, `\` or `,`.
pub fn counter_family(out: &mut String, name: &str, help: &str, series: &[(&[(&str, &str)], u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (labels, value) in series {
        let _ = writeln!(out, "{name}{{{}}} {value}", render_labels(labels));
    }
}

/// Appends a histogram whose recorded values are nanoseconds, exposed in
/// microseconds. `name` should end in `_us` by convention.
pub fn histogram_us(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    let no_labels: &[(&str, &str)] = &[];
    histogram_us_family(out, name, help, &[(no_labels, snap)]);
}

/// Appends a histogram family: one `# HELP` / `# TYPE` header, then one
/// full labelled histogram (buckets, `_sum`, `_count`) per entry. The
/// `le` label is emitted last in each bucket's label set. Label values
/// must not contain `"`, `\` or `,`.
pub fn histogram_us_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(&[(&str, &str)], &HistogramSnapshot)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, snap) in series {
        let rendered = render_labels(labels);
        let prefix = if rendered.is_empty() {
            String::new()
        } else {
            format!("{rendered},")
        };
        for (upper_ns, cumulative) in snap.cumulative() {
            let _ = writeln!(
                out,
                "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}",
                upper_ns as f64 / 1e3
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", snap.count);
        if rendered.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", snap.sum as f64 / 1e3);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{rendered}}} {}", snap.sum as f64 / 1e3);
            let _ = writeln!(out, "{name}_count{{{rendered}}} {}", snap.count);
        }
    }
}

/// Checks that `text` is well-formed Prometheus text format: every
/// non-comment line is `name[{labels}] value`, every series is preceded by
/// a `# TYPE` for its base name, histogram bucket counts are cumulative,
/// and `_count` matches the `+Inf` bucket. Returns the number of samples.
///
/// This is the validator the acceptance gate and tests run over
/// `ServeEngine::prometheus_text()` output.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, f64, u64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value on sample line {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return Err(format!("line {lineno}: series {name} has no # TYPE"));
        }
        if name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {lineno}: bucket without an le label"))?;
            // Split off the `le` label from any other labels (e.g.
            // `tenant="a",le="1.5"`): cumulative-bucket tracking is keyed
            // by base name + the non-le labels, so labelled histogram
            // families validate per series. (No escaping in this format:
            // label values must not contain `"`, `\` or `,`.)
            let mut le = None;
            let mut others: Vec<&str> = Vec::new();
            for part in labels.split(',') {
                let (key, val) = part
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: malformed label {part:?}"))?;
                let val = val
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: unquoted label value {part:?}"))?;
                if key == "le" {
                    le = Some(val);
                } else {
                    others.push(part);
                }
            }
            let le = le.ok_or_else(|| format!("line {lineno}: bucket without an le label"))?;
            let le: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("line {lineno}: unparseable le {le:?}"))?
            };
            let series_key = format!("{base}{{{}}}", others.join(","));
            if let Some((prev_key, prev_le, prev_count)) = &last_bucket {
                if *prev_key == series_key {
                    if *prev_le >= le {
                        return Err(format!("line {lineno}: le boundaries must ascend"));
                    }
                    if *prev_count > value as u64 {
                        return Err(format!("line {lineno}: bucket counts must be cumulative"));
                    }
                }
            }
            last_bucket = Some((series_key, le, value as u64));
        } else if name.ends_with("_count")
            && typed.get(base).map(String::as_str) == Some("histogram")
        {
            let series_key = format!("{base}{{{}}}", labels.unwrap_or(""));
            if let Some((prev_key, le, count)) = &last_bucket {
                if *prev_key == series_key && le.is_infinite() && *count != value as u64 {
                    return Err(format!(
                        "line {lineno}: {name} ({value}) disagrees with the +Inf bucket ({count})"
                    ));
                }
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn exposition_validates_and_reads_back() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 2_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        counter(&mut out, "ios_requests_total", "Requests answered.", 5);
        gauge(&mut out, "ios_queue_depth", "Queued requests.", 2.0);
        histogram_us(
            &mut out,
            "ios_request_latency_us",
            "Request latency in microseconds.",
            &h.snapshot(),
        );
        let samples = validate(&out).expect("well-formed exposition");
        assert!(samples >= 2 + 4 + 2, "got {samples} samples:\n{out}");
        assert!(out.contains("ios_request_latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("ios_request_latency_us_count 5"));
        // Sum is exact: 1055 µs of recorded nanoseconds.
        assert!(out.contains("ios_request_latency_us_sum 1055"));
    }

    #[test]
    fn info_gauge_emits_one_series_per_label_set_and_validates() {
        let mut out = String::new();
        info(
            &mut out,
            "ios_simd_kernel",
            "Selected microkernel ISA per numeric path.",
            &[
                &[("path", "f32"), ("isa", "avx2")],
                &[("path", "int8"), ("isa", "avx2")],
            ],
        );
        assert!(out.contains("# TYPE ios_simd_kernel gauge"));
        assert!(out.contains("ios_simd_kernel{path=\"f32\",isa=\"avx2\"} 1"));
        assert!(out.contains("ios_simd_kernel{path=\"int8\",isa=\"avx2\"} 1"));
        assert_eq!(validate(&out), Ok(2));
    }

    #[test]
    fn labelled_families_validate_per_series() {
        let a = Histogram::new();
        a.record(1_000);
        a.record(2_000);
        let b = Histogram::new();
        b.record(5_000);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let alpha: &[(&str, &str)] = &[("tenant", "alpha")];
        let beta: &[(&str, &str)] = &[("tenant", "beta")];
        let mut out = String::new();
        counter_family(
            &mut out,
            "ios_tenant_requests_completed_total",
            "Requests completed per tenant.",
            &[(alpha, 2), (beta, 1)],
        );
        histogram_us_family(
            &mut out,
            "ios_tenant_queue_wait_us",
            "Queue wait per tenant.",
            &[(alpha, &sa), (beta, &sb)],
        );
        let samples = validate(&out).expect("well-formed exposition");
        assert!(out.contains("ios_tenant_requests_completed_total{tenant=\"alpha\"} 2"));
        assert!(out.contains("ios_tenant_queue_wait_us_bucket{tenant=\"alpha\",le=\"+Inf\"} 2"));
        assert!(out.contains("ios_tenant_queue_wait_us_count{tenant=\"beta\"} 1"));
        assert!(out.contains("ios_tenant_queue_wait_us_sum{tenant=\"beta\"} 5"));
        // beta's buckets start below alpha's totals: the validator keys
        // cumulativity per (base, labels) series, so the reset is fine.
        assert!(samples >= 2 + 4, "got {samples} samples:\n{out}");
    }

    #[test]
    fn labelled_bucket_without_le_is_rejected() {
        let text = "# TYPE h histogram\nh_bucket{tenant=\"a\"} 1\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate("ios_untyped 3").is_err());
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"two\"} 1").is_err());
        let non_cumulative = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(validate(non_cumulative).is_err());
        let count_mismatch = "# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 5\nh_count 4\n";
        assert!(validate(count_mismatch).is_err());
    }
}
