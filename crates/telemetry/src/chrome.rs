//! Chrome trace-event export.
//!
//! [`chrome_trace_json`] renders [`TraceRecord`]s in the Chrome trace-event
//! JSON array format: load the output in `chrome://tracing` (or Perfetto)
//! and every span appears as a block on its thread's timeline lane, named
//! `name` and grouped under category `cat`. Times are microseconds, as the
//! format requires; the `args` object carries each record's correlation
//! ids so batches can be followed across lanes.

use crate::trace::{TraceKind, TraceRecord};
use serde::Serialize;

/// One trace-event object, shaped exactly as `chrome://tracing` expects.
#[derive(Debug, Serialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    /// Phase: `"X"` = complete (timed) event, `"i"` = instant event.
    ph: String,
    /// Start timestamp, microseconds.
    ts: f64,
    /// Duration, microseconds (0 for instants).
    dur: f64,
    pid: u64,
    tid: u64,
    args: ChromeArgs,
}

#[derive(Debug, Serialize)]
struct ChromeArgs {
    id: u64,
    arg: u64,
    seq: u64,
}

/// Renders `records` as a Chrome trace-event JSON array.
#[must_use]
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let events: Vec<ChromeEvent> = records
        .iter()
        .map(|r| ChromeEvent {
            name: r.name.to_string(),
            cat: r.cat.to_string(),
            ph: match r.kind {
                TraceKind::Span => "X",
                TraceKind::Instant => "i",
            }
            .to_string(),
            ts: r.start_ns as f64 / 1e3,
            dur: r.dur_ns as f64 / 1e3,
            pid: 1,
            tid: r.tid,
            args: ChromeArgs {
                id: r.id,
                arg: r.arg,
                seq: r.seq,
            },
        })
        .collect();
    serde_json::to_string(&events).expect("trace events serialize infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn export_is_a_valid_trace_event_array() {
        let t = Tracer::with_capacity(64);
        t.set_enabled(true);
        {
            let mut span = t.span("stage.concurrent", "exec");
            span.set_id(3);
        }
        t.instant("request.enqueue", "serve", 11);
        let json = chrome_trace_json(&t.records());
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = value.as_array().expect("top level is an array");
        assert_eq!(events.len(), 2);
        for event in events {
            let event = event.as_object().expect("events are objects");
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
                assert!(event.get(key).is_some(), "event missing key {key}");
            }
            let ph = event.get("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "i");
        }
        let names: Vec<&str> = events
            .iter()
            .map(|e| {
                e.as_object()
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(names.contains(&"stage.concurrent"));
        assert!(names.contains(&"request.enqueue"));
    }
}
