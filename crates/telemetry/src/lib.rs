//! # ios-telemetry — measurement substrate for the IOS serving stack
//!
//! Production ML systems live or die on full-stack measurability: the
//! serving runtime cannot adapt to signals it does not emit. This crate is
//! the telemetry contract the rest of the workspace instruments against:
//!
//! * [`Histogram`] — a lock-free, log-bucketed latency histogram with a
//!   fixed number of atomic buckets. Recording is wait-free (a handful of
//!   relaxed atomic adds), count and sum are exact even under racing
//!   writers, memory is bounded regardless of how many values are
//!   recorded, and any percentile is off by at most
//!   [`Histogram::MAX_RELATIVE_ERROR`]. Histograms merge, and they
//!   snapshot into a serde-serializable [`HistogramSnapshot`].
//! * [`Tracer`] — a span/event tracer writing fixed-size
//!   [`TraceRecord`]s into a bounded ring buffer. Tracing is ~free when
//!   disabled (one relaxed atomic load per span site, no clock read) and
//!   cheap when enabled; recording never blocks on readers and never
//!   reorders records within a thread. The process-global instance
//!   ([`tracer()`]) is what the optimizer, executor, pipeline and serving
//!   engine instrument against.
//! * Exporters — [`chrome_trace_json`] renders trace records as Chrome
//!   `chrome://tracing` trace-event JSON (an array of
//!   `{name, ph, ts, dur, pid, tid}` objects), and [`prometheus`] renders
//!   counters, gauges and histograms in the Prometheus text exposition
//!   format.
//!
//! ```
//! use ios_telemetry::{Histogram, Tracer};
//!
//! let h = Histogram::new();
//! for v in [120_000, 180_000, 950_000] {
//!     h.record(v); // nanoseconds
//! }
//! assert_eq!(h.count(), 3);
//! let p = h.percentile(50.0).unwrap() as f64;
//! assert!((p - 180_000.0).abs() / 180_000.0 <= Histogram::MAX_RELATIVE_ERROR);
//!
//! let t = Tracer::with_capacity(1024);
//! t.set_enabled(true);
//! {
//!     let mut span = t.span("work", "demo");
//!     span.set_id(7);
//! } // recorded on drop
//! assert_eq!(t.records().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod chrome;
mod histogram;
pub mod prometheus;
mod trace;

pub use chrome::chrome_trace_json;
pub use histogram::{Histogram, HistogramSnapshot};
pub use trace::{tracer, Span, TraceKind, TraceRecord, Tracer};
