//! A lock-free, log-bucketed histogram with bounded memory and bounded
//! relative error.
//!
//! Values are non-negative integers (the stack records durations in
//! nanoseconds). The bucket layout is the classic hybrid linear/log scheme:
//! values below 32 get one bucket each (exact), and every power-of-two
//! octave above that is split into 32 sub-buckets, so a bucket's width is
//! at most 1/32 of its lower bound. Reporting a bucket's midpoint therefore
//! bounds the relative quantile error at 1/64 ≈ 1.6 % — well inside the
//! 5 % accuracy bar the telemetry CI gate enforces — while the whole
//! `u64` value range fits in a fixed 1920-bucket table (15 KiB of atomics).
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket, count and
//! sum, plus `fetch_min`/`fetch_max` for the exact extrema. Count and sum
//! are integer atomics, so they stay *exact* under any interleaving of
//! racing writers — the property the concurrency tests pin down.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear buckets below `1 << SUB_BITS`; `1 << SUB_BITS` sub-buckets per
/// octave above.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32
/// Total bucket count: indices are `((e - SUB_BITS) << SUB_BITS) + SUB + sub`
/// for exponent `e` in `SUB_BITS..64`, preceded by the `2 * SUB` exact
/// low-value buckets the formula degenerates into.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB; // 1920

/// Bucket index of `value` (total order preserving).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let e = 63 - value.leading_zeros();
        let sub = ((value >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        // The `+ SUB` offset makes e == SUB_BITS reproduce the identity
        // mapping, so buckets stay exact up to 2 * SUB - 1.
        (((e - SUB_BITS) as usize) << SUB_BITS) + SUB + sub
    }
}

/// `(lower bound, width)` of bucket `index`.
#[inline]
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, 1)
    } else {
        let octave = (index - SUB) >> SUB_BITS; // e - SUB_BITS
        let sub = ((index - SUB) & (SUB - 1)) as u64;
        ((SUB as u64 + sub) << octave, 1u64 << octave)
    }
}

/// Midpoint of bucket `index` — the representative value percentile queries
/// report.
#[inline]
fn bucket_mid(index: usize) -> u64 {
    let (lower, width) = bucket_bounds(index);
    lower + (width >> 1)
}

/// A thread-safe log-bucketed histogram of `u64` values (nanoseconds, by
/// convention, throughout this workspace).
///
/// Memory is fixed at construction (1920 atomic buckets); recording any
/// number of values cannot grow it. Count and sum are exact; percentiles
/// carry at most [`Histogram::MAX_RELATIVE_ERROR`] relative error.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Upper bound on the relative error of any percentile query: half a
    /// bucket width over the bucket's lower bound, `1/64`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; safe to call from any number of
    /// threads concurrently.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration given in microseconds, rounding (not truncating)
    /// to the nearest nanosecond. Negative inputs are a caller bug
    /// (debug-asserted) and clamp to zero in release builds.
    pub fn record_us(&self, us: f64) {
        debug_assert!(us >= 0.0, "recorded a negative duration: {us} µs");
        self.record((us * 1e3).round().max(0.0) as u64);
    }

    /// Number of recorded values (exact).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (exact, wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (exact), or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest recorded value (exact), or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean of recorded values, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Folds another histogram's contents into this one. Both may keep
    /// recording concurrently; the merge is the sum of what each bucket
    /// held at its read point.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank percentile (`p` in `0..=100`), or `None` when empty.
    /// The result is clamped to the exact recorded `[min, max]`, so the
    /// extremes are exact; interior quantiles carry at most
    /// [`Histogram::MAX_RELATIVE_ERROR`].
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.percentiles(&[p]).map(|v| v[0])
    }

    /// Several nearest-rank percentiles in **one pass** over the buckets.
    /// `ps` must be ascending (debug-asserted); returns `None` when the
    /// histogram is empty.
    #[must_use]
    pub fn percentiles(&self, ps: &[f64]) -> Option<Vec<u64>> {
        debug_assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "percentile queries must be ascending"
        );
        let count = self.count();
        if count == 0 || ps.is_empty() {
            return None;
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(ps.len());
        let mut seen = 0u64;
        let mut bucket = 0usize;
        for &p in ps {
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let rank = rank.min(count);
            while seen < rank && bucket < NUM_BUCKETS {
                seen += self.buckets[bucket].load(Ordering::Relaxed);
                bucket += 1;
            }
            // `bucket - 1` holds the ranked value (the loop advanced past it).
            out.push(bucket_mid(bucket.saturating_sub(1)).clamp(min, max));
        }
        Some(out)
    }

    /// A point-in-time copy of the histogram's contents.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets every bucket and counter to empty.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// A serializable point-in-time copy of a [`Histogram`]: only the
/// non-empty buckets, as `(bucket index, count)` pairs in ascending index
/// order, plus the exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded — what [`window_delta`] of two
    /// identical snapshots produces, and the natural "no window yet" seed
    /// for controllers keeping a previous snapshot between ticks.
    ///
    /// [`window_delta`]: HistogramSnapshot::window_delta
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Whether the snapshot holds no recorded values. Empty snapshots
    /// answer `None` to every percentile query — a controller watching a
    /// window can never act on a vacuous p95.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The values recorded between `earlier` and `self`, as a snapshot —
    /// the *windowed* view an adaptation controller acts on: take a
    /// snapshot each tick and delta it against the previous tick's.
    ///
    /// Count and sum are the exact differences of the two snapshots'
    /// fields, and each bucket's count is the exact difference for that
    /// bucket (bucket counters are monotone, so the per-field subtraction
    /// is exact even when the two snapshots raced live writers). The
    /// all-time `min`/`max` cannot be windowed, so the delta's extrema are
    /// the bucket *bounds* of its first and last non-empty bucket — within
    /// one bucket width of the true window extrema, preserving the
    /// [`Histogram::MAX_RELATIVE_ERROR`] percentile bound.
    ///
    /// An empty window (`earlier == self`) yields a snapshot whose
    /// percentile queries return `None`, never a fake zero.
    #[must_use]
    pub fn window_delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut prev = earlier.buckets.iter().peekable();
        for &(index, n) in &self.buckets {
            let mut before = 0u64;
            while let Some(&&(pi, pn)) = prev.peek() {
                if pi < index {
                    prev.next();
                } else {
                    if pi == index {
                        before = pn;
                        prev.next();
                    }
                    break;
                }
            }
            let delta = n.saturating_sub(before);
            if delta > 0 {
                buckets.push((index, delta));
            }
        }
        let min = buckets
            .first()
            .map_or(u64::MAX, |&(i, _)| bucket_bounds(i as usize).0);
        let max = buckets.last().map_or(0, |&(i, _)| {
            let (lower, width) = bucket_bounds(i as usize);
            lower + (width - 1)
        });
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            buckets,
        }
    }

    /// Nearest-rank percentile (`p` in `0..=100`), or `None` when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.percentiles(&[p]).map(|v| v[0])
    }

    /// Several nearest-rank percentiles in one pass over the buckets.
    /// `ps` must be ascending (debug-asserted); `None` when the snapshot
    /// is empty — callers must handle the no-data case explicitly instead
    /// of mistaking an empty window for "p95 = 0".
    #[must_use]
    pub fn percentiles(&self, ps: &[f64]) -> Option<Vec<u64>> {
        debug_assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "percentile queries must be ascending"
        );
        if self.count == 0 || ps.is_empty() {
            return None;
        }
        let mut out = Vec::with_capacity(ps.len());
        let mut seen = 0u64;
        let mut next = self.buckets.iter();
        let mut current: Option<u32> = None;
        for &p in ps {
            let rank = (((p / 100.0) * self.count as f64).ceil().max(1.0) as u64).min(self.count);
            while seen < rank {
                match next.next() {
                    Some(&(index, n)) => {
                        seen += n;
                        current = Some(index);
                    }
                    // A racing writer bumped `count` after the buckets
                    // were read; the heaviest recorded bucket stands in.
                    None => break,
                }
            }
            out.push(match current {
                Some(index) => bucket_mid(index as usize).clamp(self.min, self.max),
                None => self.max,
            });
        }
        Some(out)
    }

    /// The representative value of the heaviest bucket (ties prefer the
    /// smaller value), or `None` when empty. For small-integer
    /// distributions — batch sizes, queue depths — buckets below 32 are
    /// exact, so this is the exact mode.
    #[must_use]
    pub fn mode(&self) -> Option<u64> {
        self.buckets
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(index, _)| bucket_mid(index as usize).clamp(self.min, self.max))
    }

    /// Mean of recorded values, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper bound, cumulative count)` pairs over the non-empty buckets,
    /// ascending — the shape a Prometheus histogram exposition needs.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut seen = 0u64;
        self.buckets
            .iter()
            .map(|&(index, n)| {
                seen += n;
                let (lower, width) = bucket_bounds(index as usize);
                (lower.saturating_add(width), seen)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64 {
            for delta in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(delta));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone in the value ({v})");
            assert!(i < NUM_BUCKETS);
            let (lower, width) = bucket_bounds(i);
            assert!(
                lower <= v && (v - lower) < width,
                "value {v} outside its bucket [{lower}, {lower}+{width})"
            );
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.sum(), (0..64).sum::<u64>());
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Each small value has its own bucket, so every percentile is exact.
        assert_eq!(h.percentile(50.0), Some(31));
        assert_eq!(h.percentile(100.0), Some(63));
    }

    #[test]
    fn percentiles_stay_within_the_error_bound() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=10_000u64).map(|i| i * 137 + (i * i) % 911).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank.min(sorted.len()) - 1] as f64;
            let approx = h.percentile(p).unwrap() as f64;
            assert!(
                (approx - exact).abs() / exact <= Histogram::MAX_RELATIVE_ERROR,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
        // One-pass multi-percentile agrees with the one-at-a-time queries.
        let many = h.percentiles(&[1.0, 50.0, 99.0]).unwrap();
        assert_eq!(many[0], h.percentile(1.0).unwrap());
        assert_eq!(many[1], h.percentile(50.0).unwrap());
        assert_eq!(many[2], h.percentile(99.0).unwrap());
    }

    #[test]
    fn merge_adds_contents() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        for v in [7u64, 700, 70_000, 7_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 5 + 500 + 50_000 + 7 + 700 + 70_000 + 7_000_000);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(7_000_000));
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let h = Histogram::new();
        for v in [3u64, 3, 900, 123_456_789] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.percentile(50.0), h.percentile(50.0));
    }

    #[test]
    fn record_us_rounds_to_nanoseconds() {
        let h = Histogram::new();
        // 0.0006 µs = 0.6 ns: truncation would drop it to 0; rounding keeps 1.
        h.record_us(0.0006);
        assert_eq!(h.sum(), 1);
        h.record_us(2.5); // 2500 ns
        assert_eq!(h.sum(), 2501);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let h = Histogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        h.record(7);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn window_delta_is_exactly_the_values_recorded_in_between() {
        let h = Histogram::new();
        for v in [5u64, 80, 80, 1_000] {
            h.record(v);
        }
        let a = h.snapshot();
        let window = [7u64, 80, 2_000_000, 13];
        for &v in &window {
            h.record(v);
        }
        let b = h.snapshot();
        let delta = b.window_delta(&a);
        assert_eq!(delta.count, window.len() as u64);
        assert_eq!(delta.sum, window.iter().sum::<u64>());
        // The delta's buckets are the window's values, bucket for bucket.
        let oracle = Histogram::new();
        for &v in &window {
            oracle.record(v);
        }
        assert_eq!(delta.buckets, oracle.snapshot().buckets);
        // Extrema are within one bucket of the true window extrema.
        assert!(delta.min <= 7 && delta.max >= 2_000_000);
        let p50 = delta.percentile(50.0).unwrap() as f64;
        assert!((p50 - 13.0).abs() <= 13.0 * Histogram::MAX_RELATIVE_ERROR);
    }

    #[test]
    fn empty_window_never_reports_percentiles() {
        let h = Histogram::new();
        h.record(42);
        let a = h.snapshot();
        let delta = a.window_delta(&a);
        assert!(delta.is_empty());
        assert_eq!(delta.percentile(95.0), None, "a vacuous p95 must be None");
        assert_eq!(delta.percentiles(&[50.0, 95.0]), None);
        assert_eq!(delta.mode(), None);
        assert_eq!(delta, HistogramSnapshot::empty().window_delta(&a));
        assert_eq!(HistogramSnapshot::empty().percentile(50.0), None);
    }

    #[test]
    fn snapshot_percentiles_match_the_live_histogram() {
        let h = Histogram::new();
        for i in 1..=5_000u64 {
            h.record(i * 91 % 70_001);
        }
        let snap = h.snapshot();
        for p in [1.0, 50.0, 95.0, 99.0] {
            assert_eq!(snap.percentile(p), h.percentile(p), "p{p}");
        }
        let many = snap.percentiles(&[1.0, 50.0, 95.0, 99.0]).unwrap();
        assert_eq!(many[2], snap.percentile(95.0).unwrap());
    }

    #[test]
    fn mode_picks_the_heaviest_bucket_preferring_smaller_ties() {
        let h = Histogram::new();
        for v in [4u64, 4, 4, 9, 9, 1] {
            h.record(v);
        }
        assert_eq!(h.snapshot().mode(), Some(4));
        let tie = Histogram::new();
        for v in [2u64, 2, 8, 8] {
            tie.record(v);
        }
        assert_eq!(tie.snapshot().mode(), Some(2), "ties prefer the smaller");
    }

    #[test]
    fn cumulative_counts_ascend_to_the_total() {
        let h = Histogram::new();
        for v in [10u64, 20, 20, 4_000, 90_000] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, 5);
    }
}
