//! Concurrency tests for `ios-telemetry`, pinning the properties that make
//! the subsystem safe to leave wired into a multi-threaded serving engine:
//!
//! * histogram **count and sum stay exact integers** under any
//!   interleaving of racing recorders — bucket counts, count and sum are
//!   independent relaxed atomics, and the test proves no increment is lost;
//! * `merge` races cleanly against live recording and against other
//!   merges — totals still add up exactly;
//! * the tracer **never reorders records written by one thread**, even
//!   with many threads recording at once: within a thread both the global
//!   sequence number and the timestamp are monotone.

use ios_telemetry::{Histogram, HistogramSnapshot, TraceKind, Tracer};
use proptest::prelude::*;

#[test]
fn racing_recorders_keep_count_and_sum_exact() {
    let h = Histogram::new();
    let threads = 8u64;
    let per_thread = 50_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = &h;
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Deterministic values spanning several octaves.
                    h.record(t * 1_000_003 + i * 37);
                }
            });
        }
    });
    let expected_sum: u64 = (0..threads)
        .flat_map(|t| (0..per_thread).map(move |i| t * 1_000_003 + i * 37))
        .sum();
    assert_eq!(h.count(), threads * per_thread, "no recorded value lost");
    assert_eq!(h.sum(), expected_sum, "sum is exact, not sampled");
    // The buckets also add up: percentile mass equals the exact count.
    let snap = h.snapshot();
    assert_eq!(
        snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        threads * per_thread
    );
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, (threads - 1) * 1_000_003 + (per_thread - 1) * 37);
}

#[test]
fn merges_race_cleanly_against_live_recording() {
    // One thread records straight into the target while six others build
    // local histograms and merge them in — the shape a per-worker
    // aggregation takes. Whatever the interleaving, totals are exact.
    let target = Histogram::new();
    let mergers = 6u64;
    let per_thread = 20_000u64;
    std::thread::scope(|scope| {
        let t = &target;
        scope.spawn(move || {
            for i in 0..per_thread {
                t.record(i);
            }
        });
        for k in 0..mergers {
            let t = &target;
            scope.spawn(move || {
                let local = Histogram::new();
                for i in 0..per_thread {
                    local.record(k * 7 + i);
                }
                t.merge(&local);
            });
        }
    });
    let direct: u64 = (0..per_thread).sum();
    let merged: u64 = (0..mergers).map(|k| per_thread * k * 7 + direct).sum();
    assert_eq!(target.count(), (mergers + 1) * per_thread);
    assert_eq!(target.sum(), direct + merged);
    assert_eq!(target.min(), Some(0));
    assert_eq!(target.max(), Some((mergers - 1) * 7 + per_thread - 1));
}

#[test]
fn window_deltas_stay_exact_and_conserved_under_racing_writers() {
    // The adaptation controller's sensor: snapshot each tick, delta
    // against the previous tick. Under racing writers every delta must be
    // non-negative bucket-by-bucket (counters are monotone), its count and
    // sum must equal the exact difference of the two snapshots, and the
    // deltas must *conserve*: chained over the whole run they add back up
    // to the final totals — no recorded value is double-counted or lost.
    let h = Histogram::new();
    let writers = 4u64;
    let per_thread = 40_000u64;
    let snapshots = std::thread::scope(|scope| {
        for t in 0..writers {
            let h = &h;
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.record(t * 999_983 + i * 17);
                }
            });
        }
        // The reader ticks while the writers race.
        let mut snaps = vec![HistogramSnapshot::empty()];
        for _ in 0..50 {
            snaps.push(h.snapshot());
            std::thread::yield_now();
        }
        snaps
    });
    // One more snapshot after the scope joined every writer: quiescent.
    let last = h.snapshot();
    assert_eq!(last.count, writers * per_thread);

    let mut chained_count = 0u64;
    let mut chained_sum = 0u64;
    let mut chained_buckets: std::collections::BTreeMap<u32, u64> =
        std::collections::BTreeMap::new();
    let all: Vec<&HistogramSnapshot> = snapshots.iter().chain(std::iter::once(&last)).collect();
    for pair in all.windows(2) {
        let delta = pair[1].window_delta(pair[0]);
        assert_eq!(delta.count, pair[1].count - pair[0].count);
        assert_eq!(delta.sum, pair[1].sum - pair[0].sum);
        if delta.is_empty() {
            assert_eq!(delta.percentile(95.0), None);
        }
        for &(index, n) in &delta.buckets {
            assert!(n > 0, "deltas keep only non-empty buckets");
            *chained_buckets.entry(index).or_default() += n;
        }
        chained_count += delta.count;
        chained_sum += delta.sum;
    }
    assert_eq!(chained_count, last.count, "windows conserve the count");
    assert_eq!(chained_sum, last.sum, "windows conserve the sum");
    let rebuilt: Vec<(u32, u64)> = chained_buckets.into_iter().collect();
    assert_eq!(
        rebuilt, last.buckets,
        "chained window deltas rebuild the final bucket contents exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-writer exactness: whatever was recorded between two
    /// snapshots, `window_delta` is bucket-for-bucket the histogram of
    /// exactly those values.
    #[test]
    fn window_delta_equals_the_window_contents(
        before in proptest::collection::vec(0u64..2_000_000, 0..200),
        window in proptest::collection::vec(0u64..2_000_000, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let a = h.snapshot();
        for &v in &window {
            h.record(v);
        }
        let delta = h.snapshot().window_delta(&a);
        let oracle = Histogram::new();
        for &v in &window {
            oracle.record(v);
        }
        let expected = oracle.snapshot();
        prop_assert_eq!(delta.count, expected.count);
        prop_assert_eq!(delta.sum, expected.sum);
        prop_assert_eq!(&delta.buckets, &expected.buckets);
        if window.is_empty() {
            prop_assert_eq!(delta.percentile(95.0), None);
        } else {
            // The windowed p95 is within the histogram's error bound of
            // the exact nearest-rank p95 of the window's values.
            let mut sorted = window.clone();
            sorted.sort_unstable();
            let rank = ((0.95 * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = delta.percentile(95.0).unwrap() as f64;
            prop_assert!(
                (approx - exact).abs() <= exact.max(1.0) * Histogram::MAX_RELATIVE_ERROR,
                "windowed p95 {} vs exact {}", approx, exact
            );
        }
    }
}

#[test]
fn many_threads_never_reorder_any_single_threads_records() {
    let threads = 8u64;
    let per_thread = 1_000u64;
    // Threads hash to ring shards by thread id; size every shard for the
    // worst case of all threads colliding on one.
    let tracer = Tracer::with_capacity((threads * per_thread) as usize * 16);
    tracer.set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let tracer = &tracer;
            scope.spawn(move || {
                for i in 0..per_thread {
                    // id encodes (thread, step) so the reader can replay
                    // each thread's stream.
                    tracer.instant("tick", "test", t << 32 | i);
                }
            });
        }
    });
    let records = tracer.records();
    assert_eq!(records.len() as u64, threads * per_thread);
    assert_eq!(tracer.dropped(), 0);

    let mut by_writer: std::collections::HashMap<u64, Vec<_>> = std::collections::HashMap::new();
    for r in records {
        assert_eq!(r.kind, TraceKind::Instant);
        by_writer.entry(r.id >> 32).or_default().push(r);
    }
    assert_eq!(by_writer.len() as u64, threads);
    for (writer, stream) in by_writer {
        // `records()` sorts by (start_ns, seq); within one writer that
        // order must reproduce program order exactly.
        assert_eq!(stream.len() as u64, per_thread);
        for (step, r) in stream.iter().enumerate() {
            assert_eq!(
                r.id & 0xffff_ffff,
                step as u64,
                "writer {writer} reordered its records"
            );
        }
        assert!(stream.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(stream.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        // One writer thread = one tracer tid.
        assert!(stream.windows(2).all(|w| w[0].tid == w[1].tid));
    }
}
