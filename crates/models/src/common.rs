//! Shared helpers for model definitions.

use ios_ir::{Conv2dParams, GraphBuilder, PoolParams, TensorShape, Value};

/// Adds a convolution with fused ReLU and "same" padding for odd kernels.
pub fn conv_relu(
    b: &mut GraphBuilder,
    name: impl Into<String>,
    input: Value,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
) -> Value {
    let padding = Conv2dParams::same_padding(kernel);
    b.conv2d(
        name,
        input,
        Conv2dParams::relu(out_channels, kernel, stride, padding),
    )
}

/// Adds a convolution with fused ReLU and explicit padding.
pub fn conv_relu_pad(
    b: &mut GraphBuilder,
    name: impl Into<String>,
    input: Value,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Value {
    b.conv2d(
        name,
        input,
        Conv2dParams::relu(out_channels, kernel, stride, padding),
    )
}

/// Adds a ReLU-SepConv unit (the RandWire / NasNet schedule unit) with
/// "same" padding.
pub fn sep_conv(
    b: &mut GraphBuilder,
    name: impl Into<String>,
    input: Value,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
) -> Value {
    let padding = Conv2dParams::same_padding(kernel);
    b.sep_conv2d(
        name,
        input,
        Conv2dParams::relu(out_channels, kernel, stride, padding),
    )
}

/// Adds a 3×3 stride-2 max pool (the classic grid-reduction pool).
pub fn max_pool_3x3_s2(b: &mut GraphBuilder, name: impl Into<String>, input: Value) -> Value {
    b.pool(name, input, PoolParams::max((3, 3), (2, 2), (1, 1)))
}

/// Adds a 3×3 stride-1 average pool with padding 1 (used inside Inception
/// branches).
pub fn avg_pool_3x3_s1(b: &mut GraphBuilder, name: impl Into<String>, input: Value) -> Value {
    b.pool(name, input, PoolParams::avg((3, 3), (1, 1), (1, 1)))
}

/// The canonical ImageNet input shape at a given batch size and resolution.
#[must_use]
pub fn imagenet_input(batch: usize, resolution: usize) -> TensorShape {
    TensorShape::new(batch, 3, resolution, resolution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::GraphBuilder;

    #[test]
    fn helpers_produce_expected_shapes() {
        let mut b = GraphBuilder::new("t", imagenet_input(2, 64));
        let x = b.input(0);
        let c = conv_relu(&mut b, "c", x, 32, (3, 3), (1, 1));
        assert_eq!(b.shape_of(c), TensorShape::new(2, 32, 64, 64));
        let s = sep_conv(&mut b, "s", c, 64, (5, 5), (1, 1));
        assert_eq!(b.shape_of(s), TensorShape::new(2, 64, 64, 64));
        let p = max_pool_3x3_s2(&mut b, "p", s);
        assert_eq!(b.shape_of(p), TensorShape::new(2, 64, 32, 32));
        let a = avg_pool_3x3_s1(&mut b, "a", p);
        assert_eq!(b.shape_of(a), TensorShape::new(2, 64, 32, 32));
        let g = b.build(vec![a]);
        assert_eq!(g.len(), 4);
    }
}
