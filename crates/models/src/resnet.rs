//! ResNet-34 and ResNet-50 (He et al., 2016).
//!
//! Section 5 of the paper explains why ResNets are *not* part of the main
//! benchmark: their blocks are almost pure chains, so inter-operator
//! parallelism only exists between a residual stage's main path and its
//! downsample convolution, yielding just 2-5% speedup. These models are
//! included to reproduce that observation in the test suite and examples.

use crate::common::{conv_relu, conv_relu_pad, imagenet_input};
use ios_ir::{Block, GraphBuilder, Network, PoolParams, TensorShape, Value};

/// Builds ResNet-34 (basic residual blocks) for the given batch size.
#[must_use]
pub fn resnet34(batch: usize) -> Network {
    resnet(batch, &[3, 4, 6, 3], false, "resnet34")
}

/// Builds ResNet-50 (bottleneck residual blocks) for the given batch size.
#[must_use]
pub fn resnet50(batch: usize) -> Network {
    resnet(batch, &[3, 4, 6, 3], true, "resnet50")
}

fn resnet(batch: usize, stage_sizes: &[usize], bottleneck: bool, name: &str) -> Network {
    let input = imagenet_input(batch, 224);
    let mut blocks = Vec::new();

    // Stem.
    let mut b = GraphBuilder::new(format!("{name}_stem"), input);
    let x = b.input(0);
    let c = conv_relu_pad(&mut b, "conv1", x, 64, (7, 7), (2, 2), (3, 3));
    let p = b.pool("pool1", c, PoolParams::max((3, 3), (2, 2), (1, 1)));
    let mut shape = b.shape_of(p);
    blocks.push(Block::new(b.build(vec![p])));

    let base_channels = [64usize, 128, 256, 512];
    for (stage, &num_units) in stage_sizes.iter().enumerate() {
        let channels = base_channels[stage];
        for unit in 0..num_units {
            let stride = if stage > 0 && unit == 0 { 2 } else { 1 };
            let (block, out) = residual_unit(
                format!("{name}_s{stage}_u{unit}"),
                shape,
                channels,
                stride,
                bottleneck,
            );
            blocks.push(block);
            shape = out;
        }
    }

    // Classifier.
    let mut b = GraphBuilder::new(format!("{name}_classifier"), shape);
    let x = b.input(0);
    let p = b.pool("global_pool", x, PoolParams::global_avg());
    let fc = b.matmul("fc", p, 1000);
    blocks.push(Block::new(b.build(vec![fc])));

    Network::new(name, input, blocks)
}

/// One residual unit; the projection shortcut (when present) is the only
/// operator that can run in parallel with the main path.
fn residual_unit(
    name: String,
    input: TensorShape,
    channels: usize,
    stride: usize,
    bottleneck: bool,
) -> (Block, TensorShape) {
    let out_channels = if bottleneck { channels * 4 } else { channels };
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);

    let main: Value = if bottleneck {
        let c1 = conv_relu(
            &mut b,
            format!("{name}_conv1x1a"),
            x,
            channels,
            (1, 1),
            (1, 1),
        );
        let c2 = conv_relu(
            &mut b,
            format!("{name}_conv3x3"),
            c1,
            channels,
            (3, 3),
            (stride, stride),
        );
        conv_relu(
            &mut b,
            format!("{name}_conv1x1b"),
            c2,
            out_channels,
            (1, 1),
            (1, 1),
        )
    } else {
        let c1 = conv_relu(
            &mut b,
            format!("{name}_conv3x3a"),
            x,
            channels,
            (3, 3),
            (stride, stride),
        );
        conv_relu(
            &mut b,
            format!("{name}_conv3x3b"),
            c1,
            channels,
            (3, 3),
            (1, 1),
        )
    };

    let needs_projection = stride != 1 || input.channels != out_channels;
    let shortcut = if needs_projection {
        conv_relu(
            &mut b,
            format!("{name}_downsample"),
            x,
            out_channels,
            (1, 1),
            (stride, stride),
        )
    } else {
        b.identity(format!("{name}_identity"), x)
    };

    let sum = b.add_op(format!("{name}_add"), &[main, shortcut]);
    let out = b.relu(format!("{name}_relu"), sum);
    let out_shape = b.shape_of(out);
    (Block::new(b.build(vec![out])), out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn resnet50_structure() {
        let net = resnet50(1);
        // stem + 16 residual units + classifier.
        assert_eq!(net.num_blocks(), 18);
        assert!(net.validate().is_ok());
        // 1 stem conv + 16 × (3 convs + possibly a downsample) + fc.
        let convs = net.num_compute_units();
        assert!((50..=60).contains(&convs), "compute units = {convs}");
        let out = net.blocks.last().unwrap().graph.output_shapes()[0];
        assert_eq!(out.channels, 1000);
    }

    #[test]
    fn resnet_blocks_are_nearly_chains() {
        // The whole point of including ResNet: width ≤ 2 everywhere, so
        // inter-operator parallelism is marginal.
        for net in [resnet34(1), resnet50(1)] {
            for block in &net.blocks {
                let w = dag_width(&block.graph);
                assert!(
                    w <= 2,
                    "block {} of {} has width {w}",
                    block.graph.name(),
                    net.name
                );
            }
        }
    }

    #[test]
    fn resnet34_flops_are_reasonable() {
        // ResNet-34 is ~7.3 GFLOPs (counting multiply and add separately).
        let net = resnet34(1);
        let gflops = net.total_flops() as f64 / 1e9;
        assert!((5.0..=10.0).contains(&gflops), "total = {gflops} GFLOPs");
    }
}
