//! SqueezeNet 1.0 (Iandola et al., 2016).
//!
//! Ten blocks (Table 2): the stem convolution, eight Fire modules and the
//! classifier. A Fire module squeezes the input with a 1×1 convolution and
//! expands it with parallel 1×1 and 3×3 convolutions whose outputs are
//! concatenated — exactly the kind of short, wide block where inter-operator
//! parallelism is available but synchronization overhead matters (which is
//! why the greedy schedule loses on SqueezeNet in Figure 6).

use crate::common::{conv_relu, conv_relu_pad, imagenet_input};
use ios_ir::{Block, GraphBuilder, Network, PoolParams, TensorShape};

/// Builds SqueezeNet 1.0 for the given batch size (224×224 RGB input).
#[must_use]
pub fn squeezenet(batch: usize) -> Network {
    let input = imagenet_input(batch, 224);
    let mut blocks = Vec::new();

    // Block 1: stem conv 7×7/2 + max pool.
    let mut b = GraphBuilder::new("squeeze_stem", input);
    let x = b.input(0);
    let c = conv_relu_pad(&mut b, "conv1", x, 96, (7, 7), (2, 2), (2, 2));
    let p = b.pool("pool1", c, PoolParams::max((3, 3), (2, 2), (0, 0)));
    let shape = b.shape_of(p);
    blocks.push(Block::new(b.build(vec![p])));

    // Fire modules 2-9 with the 1.0 configuration; pooling after fire4 and fire8.
    let fire_cfg: [(usize, usize, bool); 8] = [
        (16, 64, false),  // fire2
        (16, 64, false),  // fire3
        (32, 128, true),  // fire4 (+pool)
        (32, 128, false), // fire5
        (48, 192, false), // fire6
        (48, 192, false), // fire7
        (64, 256, true),  // fire8 (+pool)
        (64, 256, false), // fire9
    ];
    let mut shape = shape;
    for (i, (squeeze, expand, pool_after)) in fire_cfg.iter().enumerate() {
        let (block, out) = fire_module(i + 2, shape, *squeeze, *expand, *pool_after);
        blocks.push(block);
        shape = out;
    }

    // Block 10: classifier conv 1×1 (1000) + global average pool.
    let mut b = GraphBuilder::new("squeeze_classifier", shape);
    let x = b.input(0);
    let c = conv_relu(&mut b, "conv10", x, 1000, (1, 1), (1, 1));
    let p = b.pool("global_pool", c, PoolParams::global_avg());
    blocks.push(Block::new(b.build(vec![p])));

    Network::new("squeezenet", input, blocks)
}

/// One Fire module: squeeze 1×1 → {expand 1×1, expand 3×3} → concat,
/// optionally followed by a stride-2 max pool.
fn fire_module(
    index: usize,
    input: TensorShape,
    squeeze: usize,
    expand: usize,
    pool_after: bool,
) -> (Block, TensorShape) {
    let name = format!("fire{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);
    let s = conv_relu(
        &mut b,
        format!("{name}_squeeze1x1"),
        x,
        squeeze,
        (1, 1),
        (1, 1),
    );
    let e1 = conv_relu(
        &mut b,
        format!("{name}_expand1x1"),
        s,
        expand,
        (1, 1),
        (1, 1),
    );
    let e3 = conv_relu(
        &mut b,
        format!("{name}_expand3x3"),
        s,
        expand,
        (3, 3),
        (1, 1),
    );
    let cat = b.concat(format!("{name}_concat"), &[e1, e3]);
    let out = if pool_after {
        b.pool(
            format!("{name}_pool"),
            cat,
            PoolParams::max((3, 3), (2, 2), (0, 0)),
        )
    } else {
        cat
    };
    let out_shape = b.shape_of(out);
    (Block::new(b.build(vec![out])), out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn ten_blocks_as_in_table2() {
        let net = squeezenet(1);
        assert_eq!(net.num_blocks(), 10);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn operator_count_near_table2() {
        // Table 2 reports 50 operators.
        let net = squeezenet(1);
        let n = net.num_operators();
        assert!((38..=55).contains(&n), "operator count = {n}");
        // 1 stem + 8×3 fire convs + 1 classifier = 26 compute units.
        assert_eq!(net.num_compute_units(), 26);
    }

    #[test]
    fn fire_module_width_matches_table1() {
        // Table 1: largest SqueezeNet block has n = 6, width 3 — a fire
        // module with its pool. Our fire4 block has 5-6 ops and width 2-3.
        let net = squeezenet(1);
        let (idx, n) = net.largest_block().unwrap();
        assert!((5..=6).contains(&n), "largest block has {n} ops");
        let w = dag_width(&net.blocks[idx].graph);
        assert!((2..=3).contains(&w), "width = {w}");
    }

    #[test]
    fn classifier_outputs_1000_channels() {
        let net = squeezenet(1);
        let out = net.blocks[9].graph.output_shapes()[0];
        assert_eq!(out.channels, 1000);
        assert_eq!((out.height, out.width), (1, 1));
    }

    #[test]
    fn squeezenet_is_much_smaller_than_inception() {
        let sq = squeezenet(1);
        let inc = crate::inception_v3(1);
        assert!(sq.total_flops() < inc.total_flops() / 2);
        assert!(sq.total_parameters() < inc.total_parameters() / 5);
    }
}
