//! VGG-16 (Simonyan & Zisserman) — the 2013-era representative of Figure 1:
//! few convolutions, each with a very large amount of work per kernel
//! (~2330 MFLOPs on average), which is why sequential execution saturated
//! the GPUs of that generation.

use crate::common::{conv_relu, imagenet_input};
use ios_ir::{Block, GraphBuilder, Network, PoolParams};

/// Builds VGG-16 for the given batch size (224×224 RGB input).
#[must_use]
pub fn vgg16(batch: usize) -> Network {
    let input = imagenet_input(batch, 224);
    let cfg: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];

    let mut blocks = Vec::new();
    let mut shape = input;
    for (stage, (convs, channels)) in cfg.iter().enumerate() {
        let mut b = GraphBuilder::new(format!("vgg_stage{stage}"), shape);
        let mut v = b.input(0);
        for i in 0..*convs {
            v = conv_relu(
                &mut b,
                format!("s{stage}_conv{i}"),
                v,
                *channels,
                (3, 3),
                (1, 1),
            );
        }
        v = b.pool(
            format!("s{stage}_pool"),
            v,
            PoolParams::max((2, 2), (2, 2), (0, 0)),
        );
        shape = b.shape_of(v);
        blocks.push(Block::new(b.build(vec![v])));
    }

    // Classifier: three fully connected layers.
    let mut b = GraphBuilder::new("vgg_classifier", shape);
    let x = b.input(0);
    let f1 = b.matmul("fc1", x, 4096);
    let f2 = b.matmul("fc2", f1, 4096);
    let f3 = b.matmul("fc3", f2, 1000);
    blocks.push(Block::new(b.build(vec![f3])));

    Network::new("vgg16", input, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn vgg16_has_thirteen_convs_and_three_fcs() {
        let net = vgg16(1);
        assert_eq!(net.num_compute_units(), 16);
        assert_eq!(net.num_blocks(), 6);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn vgg_is_a_pure_chain() {
        let net = vgg16(1);
        for block in &net.blocks {
            assert_eq!(dag_width(&block.graph), 1);
        }
    }

    #[test]
    fn vgg_average_conv_work_is_huge() {
        // Figure 1: ~2330 MFLOPs per convolution for VGG.
        let net = vgg16(1);
        let avg = net.avg_mflops_per_conv();
        assert!(avg > 1_200.0, "avg MFLOPs per conv = {avg}");
        // And far larger than Inception V3's per-conv work.
        let inception = crate::inception_v3(1);
        assert!(avg > 5.0 * inception.avg_mflops_per_conv());
    }

    #[test]
    fn vgg_flops_around_30_gflops() {
        let net = vgg16(1);
        let gflops = net.total_flops() as f64 / 1e9;
        assert!((25.0..=40.0).contains(&gflops), "total = {gflops} GFLOPs");
    }
}
