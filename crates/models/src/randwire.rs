//! RandWire (Xie et al., 2019): randomly wired networks.
//!
//! Each stage is a random DAG generated with the Watts–Strogatz small-world
//! model; every node is a Relu-SepConv unit, nodes with multiple inputs sum
//! their inputs first, and the stage output aggregates all sink nodes. The
//! paper benchmarks a RandWire network with 3 such stages and ~120
//! operators whose largest block has 33 operators and width 8 (Tables 1-2).
//!
//! Generation is deterministic given the seed, so experiments are
//! reproducible run to run.

use crate::common::{imagenet_input, sep_conv};
use ios_ir::{Block, GraphBuilder, Network, TensorShape, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Watts–Strogatz random graph generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandWireConfig {
    /// Number of nodes per stage.
    pub nodes_per_stage: usize,
    /// Number of stages (blocks).
    pub stages: usize,
    /// Each node is initially connected to `k` nearest neighbours on the ring
    /// (must be even).
    pub k: usize,
    /// Rewiring probability.
    pub p: f64,
    /// Base channel count of the first stage (doubles per stage).
    pub channels: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for RandWireConfig {
    fn default() -> Self {
        // A Watts-Strogatz regime sized so the largest block has roughly the
        // 33 operators of the paper's RandWire benchmark (Table 1); the full
        // WS(32, 4, 0.75) network is also expressible via `randwire`.
        RandWireConfig {
            nodes_per_stage: 20,
            stages: 3,
            k: 4,
            p: 0.75,
            channels: 78,
            seed: 2021,
        }
    }
}

/// Builds the default RandWire benchmark network at the given batch size.
#[must_use]
pub fn randwire_small(batch: usize) -> Network {
    randwire(batch, RandWireConfig::default())
}

/// Builds a RandWire network with an explicit configuration.
///
/// # Panics
///
/// Panics if `k` is odd or larger than the number of nodes.
#[must_use]
pub fn randwire(batch: usize, config: RandWireConfig) -> Network {
    assert!(config.k.is_multiple_of(2), "Watts-Strogatz k must be even");
    assert!(
        config.k < config.nodes_per_stage,
        "k must be smaller than the node count"
    );
    let input = imagenet_input(batch, 224);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut blocks = Vec::new();

    // Stem: halve resolution twice and lift channels, so the random stages
    // operate at 56×56 like the reference implementation.
    let mut b = GraphBuilder::new("randwire_stem", input);
    let x = b.input(0);
    let c1 = sep_conv(&mut b, "stem_conv1", x, config.channels / 2, (3, 3), (2, 2));
    let c2 = sep_conv(&mut b, "stem_conv2", c1, config.channels, (3, 3), (2, 2));
    let stem_shape = b.shape_of(c2);
    let stem = Block::new(b.build(vec![c2]));

    let mut shape = stem_shape;
    for stage in 0..config.stages {
        let channels = config.channels * (1 << stage);
        let stride = 2;
        let (block, out_shape) = random_stage(stage, shape, channels, stride, &config, &mut rng);
        blocks.push(block);
        shape = out_shape;
    }

    // Fold the stem into the first random stage? The paper counts 3 blocks
    // for RandWire, so we prepend the stem to the first block by keeping it
    // as part of the returned network only through the block list below.
    let mut all_blocks = vec![stem];
    all_blocks.extend(blocks);
    // Merge stem into the first random stage to keep exactly 3 blocks.
    let net = Network::new("randwire", input, all_blocks);
    merge_first_two_blocks(net)
}

/// Generates one random stage as a block.
fn random_stage(
    stage: usize,
    input: TensorShape,
    channels: usize,
    stride: usize,
    config: &RandWireConfig,
    rng: &mut StdRng,
) -> (Block, TensorShape) {
    let n = config.nodes_per_stage;
    let edges = watts_strogatz_dag(n, config.k, config.p, rng);

    let name = format!("randwire_stage{stage}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);

    // Node 0..n: each is (sum of inputs) → Relu-SepConv.
    let mut node_values: Vec<Option<Value>> = vec![None; n];
    for node in 0..n {
        let preds: Vec<usize> = edges
            .iter()
            .filter(|&&(_, v)| v == node)
            .map(|&(u, _)| u)
            .collect();
        let node_stride = if preds.is_empty() && stride == 2 {
            (2, 2)
        } else {
            (1, 1)
        };
        let input_value = if preds.is_empty() {
            x
        } else if preds.len() == 1 {
            node_values[preds[0]].expect("predecessor already built")
        } else {
            let values: Vec<Value> = preds
                .iter()
                .map(|&p| node_values[p].expect("predecessor built"))
                .collect();
            b.add_op(format!("{name}_sum{node}"), &values)
        };
        let v = sep_conv(
            &mut b,
            format!("{name}_sepconv{node}"),
            input_value,
            channels,
            (3, 3),
            node_stride,
        );
        node_values[node] = Some(v);
    }

    // Output: average the sink nodes (nodes with no successors). Sinks at
    // full resolution must be downsampled to match the strided entry nodes.
    let has_succ: Vec<bool> = (0..n).map(|u| edges.iter().any(|&(a, _)| a == u)).collect();
    let mut sinks: Vec<Value> = Vec::new();
    let mut sink_shape: Option<TensorShape> = None;
    for node in 0..n {
        if !has_succ[node] {
            let v = node_values[node].expect("node built");
            let s = b.shape_of(v);
            match sink_shape {
                None => {
                    sink_shape = Some(s);
                    sinks.push(v);
                }
                Some(expected) if s == expected => sinks.push(v),
                Some(expected) => {
                    // Resolution mismatch (the node consumed the stage input
                    // directly): bring it to the common resolution.
                    let fixed = sep_conv(
                        &mut b,
                        format!("{name}_align{node}"),
                        v,
                        channels,
                        (3, 3),
                        (expected_stride(s, expected), expected_stride(s, expected)),
                    );
                    sinks.push(fixed);
                }
            }
        }
    }
    let out = if sinks.len() == 1 {
        sinks[0]
    } else {
        b.add_op(format!("{name}_aggregate"), &sinks)
    };
    let out_shape = b.shape_of(out);
    (Block::new(b.build(vec![out])), out_shape)
}

fn expected_stride(from: TensorShape, to: TensorShape) -> usize {
    (from.height / to.height).max(1)
}

/// Generates a Watts–Strogatz small-world graph and orients every edge from
/// the lower to the higher node index, producing a DAG.
fn watts_strogatz_dag(n: usize, k: usize, p: f64, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Ring lattice: node i connects to its k/2 clockwise neighbours.
    for i in 0..n {
        for j in 1..=(k / 2) {
            let target = (i + j) % n;
            edges.push((i, target));
        }
    }
    // Rewire each edge's endpoint with probability p.
    let mut rewired = Vec::with_capacity(edges.len());
    for (u, v) in edges {
        if rng.gen_bool(p) {
            let mut new_v = rng.gen_range(0..n);
            let mut guard = 0;
            while (new_v == u || rewired.contains(&(u, new_v)) || rewired.contains(&(new_v, u)))
                && guard < 32
            {
                new_v = rng.gen_range(0..n);
                guard += 1;
            }
            rewired.push((u, new_v));
        } else {
            rewired.push((u, v));
        }
    }
    // Orient low → high to obtain a DAG and drop self loops / duplicates.
    let mut dag: Vec<(usize, usize)> = rewired
        .into_iter()
        .filter(|&(u, v)| u != v)
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    dag.sort_unstable();
    dag.dedup();
    dag
}

/// Merges the first two blocks of a network into one (used to attach the stem
/// to the first random stage so the block count matches the paper).
fn merge_first_two_blocks(net: Network) -> Network {
    if net.blocks.len() < 2 {
        return net;
    }
    let stem = &net.blocks[0].graph;
    let first = &net.blocks[1].graph;
    let mut b = GraphBuilder::with_inputs(first.name(), stem.input_shapes().to_vec());
    // Replay the stem.
    let mut stem_map: Vec<Value> = Vec::new();
    for op in stem.ops() {
        let inputs: Vec<Value> = op
            .inputs
            .iter()
            .map(|v| match v {
                Value::Input(i) => Value::Input(*i),
                Value::Op(id) => stem_map[id.index()],
            })
            .collect();
        stem_map.push(b.add(op.name.clone(), op.kind.clone(), &inputs));
    }
    let stem_outputs: Vec<Value> = stem
        .outputs()
        .iter()
        .map(|v| match v {
            Value::Input(i) => Value::Input(*i),
            Value::Op(id) => stem_map[id.index()],
        })
        .collect();
    // Replay the first stage on top of the stem outputs.
    let mut first_map: Vec<Value> = Vec::new();
    for op in first.ops() {
        let inputs: Vec<Value> = op
            .inputs
            .iter()
            .map(|v| match v {
                Value::Input(i) => stem_outputs[*i],
                Value::Op(id) => first_map[id.index()],
            })
            .collect();
        first_map.push(b.add(op.name.clone(), op.kind.clone(), &inputs));
    }
    let outputs: Vec<Value> = first
        .outputs()
        .iter()
        .map(|v| match v {
            Value::Input(i) => stem_outputs[*i],
            Value::Op(id) => first_map[id.index()],
        })
        .collect();
    let merged = Block::new(b.build(outputs));
    let mut blocks = vec![merged];
    blocks.extend(net.blocks.into_iter().skip(2));
    Network::new(net.name, net.input_shape, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn three_blocks_as_in_table2() {
        let net = randwire_small(1);
        assert_eq!(net.num_blocks(), 3);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn operator_count_in_table2_ballpark() {
        // Sized so that each random stage is close to the paper's largest
        // RandWire block (33 operators, Table 1).
        let net = randwire_small(1);
        let sepconvs = net.num_compute_units();
        assert!((56..=80).contains(&sepconvs), "sepconv count = {sepconvs}");
        let (_, largest) = net.largest_block().unwrap();
        assert!((26..=45).contains(&largest), "largest block = {largest}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = randwire_small(1);
        let b = randwire_small(1);
        assert_eq!(a.num_operators(), b.num_operators());
        assert_eq!(a.blocks[1].graph.num_edges(), b.blocks[1].graph.num_edges());
        // A different seed gives a different wiring.
        let other = randwire(
            1,
            RandWireConfig {
                seed: 7,
                ..RandWireConfig::default()
            },
        );
        assert!(
            other.blocks[1].graph.num_edges() != a.blocks[1].graph.num_edges()
                || other.num_operators() != a.num_operators()
        );
    }

    #[test]
    fn blocks_are_wide_dags() {
        // Table 1: the largest RandWire block has width 8. Random wiring
        // makes the exact value seed dependent; it must be clearly larger
        // than a chain and fit the scheduler.
        let net = randwire_small(1);
        for block in &net.blocks {
            let w = dag_width(&block.graph);
            assert!(w >= 3, "block {} has width {w}", block.graph.name());
            assert!(block.len() <= 128);
        }
    }

    #[test]
    fn channels_double_each_stage() {
        let net = randwire_small(1);
        let c0 = net.blocks[0].graph.output_shapes()[0].channels;
        let c1 = net.blocks[1].graph.output_shapes()[0].channels;
        let c2 = net.blocks[2].graph.output_shapes()[0].channels;
        assert_eq!(c1, 2 * c0);
        assert_eq!(c2, 2 * c1);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_is_rejected() {
        let _ = randwire(
            1,
            RandWireConfig {
                k: 3,
                ..RandWireConfig::default()
            },
        );
    }

    #[test]
    fn watts_strogatz_produces_dag_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = watts_strogatz_dag(16, 4, 0.5, &mut rng);
        assert!(!edges.is_empty());
        for &(u, v) in &edges {
            assert!(u < v, "edge ({u},{v}) is not oriented low→high");
            assert!(v < 16);
        }
        // No duplicates.
        let mut sorted = edges.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len());
    }
}
