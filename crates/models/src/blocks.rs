//! Hand-built graphs used in the paper's illustrations and analysis.

use crate::common::conv_relu;
use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

/// The four-convolution block of Figure 2: convolutions `a` (3×3×384),
/// `b` (3×3×768), `c` (3×3×384) and `d` (3×3×768) all reading the same
/// 384-channel input, followed by a channel concatenation. The per-branch
/// work (0.6 / 1.2 / 0.6 / 1.2 GFLOPs) matches the figure's annotations.
#[must_use]
pub fn figure2_block(batch: usize) -> Network {
    let input = TensorShape::new(batch, 384, 15, 15);
    let mut b = GraphBuilder::new("figure2_block", input);
    let x = b.input(0);
    let a = conv_relu(&mut b, "conv_a", x, 384, (3, 3), (1, 1));
    let bb = conv_relu(&mut b, "conv_b", x, 768, (3, 3), (1, 1));
    let c = conv_relu(&mut b, "conv_c", x, 384, (3, 3), (1, 1));
    let d = conv_relu(&mut b, "conv_d", x, 768, (3, 3), (1, 1));
    let cat = b.concat("concat", &[a, bb, c, d]);
    let graph = b.build(vec![cat]);
    Network::new("figure2", input, vec![Block::new(graph)])
}

/// The three-operator example of Figure 5: `a → b`, with `c` independent of
/// both.
#[must_use]
pub fn figure5_graph(batch: usize) -> ios_ir::Graph {
    let input = TensorShape::new(batch, 64, 28, 28);
    let mut b = GraphBuilder::new("figure5", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)));
    let bb = b.conv2d("b", a, Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(64, (1, 1), (1, 1), (0, 0)));
    b.build(vec![bb, c])
}

/// The worst-case complexity family of Figure 13: `d` independent chains of
/// `c` convolutions each. The number of dynamic-programming transitions for
/// this graph reaches the upper bound `C(c+2, 2)^d`.
#[must_use]
pub fn worst_case_chains(chains: usize, chain_len: usize, batch: usize) -> Network {
    assert!(
        chains >= 1 && chain_len >= 1,
        "need at least one chain of one operator"
    );
    let input = TensorShape::new(batch, 32, 16, 16);
    let mut b = GraphBuilder::new(format!("chains_{chains}x{chain_len}"), input);
    let x = b.input(0);
    let mut outs = Vec::new();
    for ci in 0..chains {
        let mut v = x;
        for oi in 0..chain_len {
            v = conv_relu(&mut b, format!("chain{ci}_op{oi}"), v, 32, (3, 3), (1, 1));
        }
        outs.push(v);
    }
    let graph = b.build(outs);
    Network::new(
        format!("worst_case_{chains}x{chain_len}"),
        input,
        vec![Block::new(graph)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn figure2_block_structure() {
        let net = figure2_block(1);
        assert_eq!(net.num_blocks(), 1);
        let g = &net.blocks[0].graph;
        // Four convolutions and a concat.
        assert_eq!(g.len(), 5);
        assert_eq!(net.num_compute_units(), 4);
        // Concat output combines all four branches.
        assert_eq!(g.output_shapes()[0].channels, 384 + 768 + 384 + 768);
        // All four convolutions are mutually independent.
        assert_eq!(dag_width(g), 4);
        // Total conv work is 0.6 + 1.2 + 0.6 + 1.2 ≈ 3.6 GFLOPs.
        let gflops = net.total_flops() as f64 / 1e9;
        assert!((gflops - 3.6).abs() < 0.2, "total = {gflops} GFLOPs");
    }

    #[test]
    fn figure5_graph_structure() {
        let g = figure5_graph(1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.successors(ios_ir::OpId(0)), vec![ios_ir::OpId(1)]);
        assert!(g.successors(ios_ir::OpId(2)).is_empty());
    }

    #[test]
    fn worst_case_width_equals_chain_count() {
        let net = worst_case_chains(4, 3, 1);
        assert_eq!(net.num_operators(), 12);
        assert_eq!(dag_width(&net.blocks[0].graph), 4);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn worst_case_rejects_zero_chains() {
        let _ = worst_case_chains(0, 3, 1);
    }
}
