//! # ios-models — CNN model zoo for the IOS reproduction
//!
//! Builds the benchmark networks of the paper (Table 2) as [`ios_ir`]
//! computation graphs, partitioned into the blocks that IOS schedules
//! independently:
//!
//! | Network | Blocks | Main operator type |
//! |---|---|---|
//! | [`inception::inception_v3`] | 11 | Conv-Relu |
//! | [`randwire::randwire_small`] | 3 | Relu-SepConv |
//! | [`nasnet::nasnet_a`] | 13 | Relu-SepConv |
//! | [`squeezenet::squeezenet`] | 10 | Conv-Relu |
//!
//! plus [`resnet`] (limited inter-operator parallelism, discussed in
//! Section 5) and [`vgg`] (the 2013 representative of Figure 1), and the
//! hand-built four-convolution block of Figure 2
//! ([`blocks::figure2_block`]).
//!
//! # Example
//!
//! ```
//! let net = ios_models::inception_v3(1);
//! assert_eq!(net.num_blocks(), 11);
//! assert!(net.num_compute_units() > 90);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocks;
pub mod common;
pub mod inception;
pub mod nasnet;
pub mod randwire;
pub mod resnet;
pub mod squeezenet;
pub mod vgg;

pub use blocks::{figure2_block, figure5_graph, worst_case_chains};
pub use inception::inception_v3;
pub use nasnet::nasnet_a;
pub use randwire::{randwire_small, RandWireConfig};
pub use resnet::{resnet34, resnet50};
pub use squeezenet::squeezenet;
pub use vgg::vgg16;

use ios_ir::Network;

/// The four benchmark networks of the paper's evaluation (Table 2), at the
/// given batch size.
#[must_use]
pub fn paper_benchmarks(batch: usize) -> Vec<Network> {
    vec![
        inception_v3(batch),
        randwire_small(batch),
        nasnet_a(batch),
        squeezenet(batch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_suite_matches_table2_block_counts() {
        let nets = paper_benchmarks(1);
        let blocks: Vec<usize> = nets.iter().map(|n| n.num_blocks()).collect();
        assert_eq!(blocks, vec![11, 3, 13, 10]);
        for net in &nets {
            assert!(net.validate().is_ok(), "{} failed validation", net.name);
            assert!(net.num_operators() > 0);
        }
    }

    #[test]
    fn every_block_fits_the_scheduler_state() {
        for net in paper_benchmarks(1) {
            for block in &net.blocks {
                assert!(
                    block.len() <= ios_ir::opset::MAX_OPS,
                    "block {} of {} has {} ops",
                    block.graph.name(),
                    net.name,
                    block.len()
                );
            }
        }
    }
}
