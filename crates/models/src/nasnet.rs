//! NasNet-A (Zoph et al., 2018).
//!
//! NasNet stacks *cells* discovered by neural architecture search. Each cell
//! combines the outputs of the two previous cells through five pairwise
//! combinations of Relu-SepConv, pooling and identity branches, and
//! concatenates the results. Cells are exactly the "blocks" IOS schedules:
//! wide (width ≈ 8, Table 1), made of many small separable convolutions, and
//! therefore the network that benefits most from inter-operator parallelism.
//!
//! The reconstruction below builds one stem cell followed by twelve
//! normal/reduction cells (13 blocks, as in Table 2).

use crate::common::{imagenet_input, sep_conv};
use ios_ir::{Block, GraphBuilder, Network, PoolParams, TensorShape, Value};

/// Builds NasNet-A for the given batch size (224×224 RGB input).
#[must_use]
pub fn nasnet_a(batch: usize) -> Network {
    nasnet_with(batch, 44, 12)
}

/// Builds a NasNet-A variant with an explicit initial filter count and cell
/// count (the stem cell is added on top of `cells`).
///
/// # Panics
///
/// Panics if `cells` is zero.
#[must_use]
pub fn nasnet_with(batch: usize, filters: usize, cells: usize) -> Network {
    assert!(cells > 0, "need at least one cell");
    let input = imagenet_input(batch, 224);
    let mut blocks = Vec::new();

    // Stem block: two strided separable convolutions; outputs the pair
    // (current, previous) consumed by the first cell.
    let mut b = GraphBuilder::new("nasnet_stem", input);
    let x = b.input(0);
    let s1 = sep_conv(&mut b, "stem_sep1", x, filters, (3, 3), (2, 2));
    let s2 = sep_conv(&mut b, "stem_sep2", s1, filters, (3, 3), (2, 2));
    blocks.push(Block::new(b.build(vec![s2, s1])));
    let mut cur_shape = TensorShape::new(batch, filters, 56, 56);
    let mut prev_shape = TensorShape::new(batch, filters, 112, 112);

    // Reduction cells at one third and two thirds of the stack.
    let reduction_at = [cells / 3, (2 * cells) / 3];
    let mut channels = filters;
    for cell_idx in 0..cells {
        let is_reduction = reduction_at.contains(&cell_idx);
        if is_reduction {
            channels *= 2;
        }
        let (block, out_shape) =
            nasnet_cell(cell_idx, cur_shape, prev_shape, channels, is_reduction);
        blocks.push(block);
        cur_shape = out_shape;
        // The cell emits (current, previous-aligned); the next cell sees the
        // new current output and the aligned previous output.
        prev_shape = TensorShape::new(batch, channels, cur_shape.height, cur_shape.width);
    }

    Network::new("nasnet_a", input, blocks)
}

/// One NasNet-A cell.
///
/// The cell takes `(h, h_prev)` — the outputs of the two preceding cells —
/// and produces `(out, h_aligned)` so the following cell again receives two
/// inputs. `h_prev` is first aligned to `h`'s resolution and channel count
/// with a 1×1 separable convolution.
fn nasnet_cell(
    index: usize,
    cur: TensorShape,
    prev: TensorShape,
    channels: usize,
    reduction: bool,
) -> (Block, TensorShape) {
    let kind = if reduction { "reduction" } else { "normal" };
    let name = format!("nasnet_{kind}_cell{index}");
    let mut b = GraphBuilder::with_inputs(name.clone(), vec![cur, prev]);
    let h = b.input(0);
    let h_prev = b.input(1);

    let stride = if reduction { (2, 2) } else { (1, 1) };

    // Squeeze both inputs to the cell's channel count.
    let x = sep_conv(
        &mut b,
        format!("{name}_adjust_cur"),
        h,
        channels,
        (1, 1),
        stride,
    );
    let prev_stride = (
        (prev.height / cur.height).max(1) * stride.0,
        (prev.width / cur.width).max(1) * stride.1,
    );
    let y = sep_conv(
        &mut b,
        format!("{name}_adjust_prev"),
        h_prev,
        channels,
        (1, 1),
        prev_stride,
    );

    // Five combination nodes of the NasNet-A normal cell. Each node applies
    // two branch operations and adds the results.
    let mut combos: Vec<Value> = Vec::new();

    // Node 1: sep3x3(x) + identity(y).
    let n1a = sep_conv(
        &mut b,
        format!("{name}_n1_sep3x3"),
        x,
        channels,
        (3, 3),
        (1, 1),
    );
    let n1b = b.identity(format!("{name}_n1_id"), y);
    combos.push(b.add_op(format!("{name}_n1_add"), &[n1a, n1b]));

    // Node 2: sep3x3(y) + sep5x5(x).
    let n2a = sep_conv(
        &mut b,
        format!("{name}_n2_sep3x3"),
        y,
        channels,
        (3, 3),
        (1, 1),
    );
    let n2b = sep_conv(
        &mut b,
        format!("{name}_n2_sep5x5"),
        x,
        channels,
        (5, 5),
        (1, 1),
    );
    combos.push(b.add_op(format!("{name}_n2_add"), &[n2a, n2b]));

    // Node 3: avgpool3x3(x) + identity(y).
    let n3a = b.pool(
        format!("{name}_n3_avg"),
        x,
        PoolParams::avg((3, 3), (1, 1), (1, 1)),
    );
    let n3b = b.identity(format!("{name}_n3_id"), y);
    combos.push(b.add_op(format!("{name}_n3_add"), &[n3a, n3b]));

    // Node 4: avgpool3x3(y) + avgpool3x3(y).
    let n4a = b.pool(
        format!("{name}_n4_avg_a"),
        y,
        PoolParams::avg((3, 3), (1, 1), (1, 1)),
    );
    let n4b = b.pool(
        format!("{name}_n4_avg_b"),
        y,
        PoolParams::avg((3, 3), (1, 1), (1, 1)),
    );
    combos.push(b.add_op(format!("{name}_n4_add"), &[n4a, n4b]));

    // Node 5: sep5x5(y) + sep3x3(y).
    let n5a = sep_conv(
        &mut b,
        format!("{name}_n5_sep5x5"),
        y,
        channels,
        (5, 5),
        (1, 1),
    );
    let n5b = sep_conv(
        &mut b,
        format!("{name}_n5_sep3x3"),
        y,
        channels,
        (3, 3),
        (1, 1),
    );
    combos.push(b.add_op(format!("{name}_n5_add"), &[n5a, n5b]));

    let out = b.concat(format!("{name}_concat"), &combos);
    // Project the concatenation back to the cell width so shapes stay bounded.
    let out = sep_conv(
        &mut b,
        format!("{name}_project"),
        out,
        channels,
        (1, 1),
        (1, 1),
    );
    let aligned_prev = b.identity(format!("{name}_prev_out"), x);
    let out_shape = b.shape_of(out);
    (Block::new(b.build(vec![out, aligned_prev])), out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn thirteen_blocks_as_in_table2() {
        let net = nasnet_a(1);
        assert_eq!(net.num_blocks(), 13);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn cells_are_wide_blocks() {
        // Table 1: the largest NasNet block has n = 18 operators and width 8.
        let net = nasnet_a(1);
        let (idx, n) = net.largest_block().unwrap();
        assert!((15..=22).contains(&n), "largest block has {n} ops");
        let w = dag_width(&net.blocks[idx].graph);
        assert!((6..=12).contains(&w), "width = {w}");
    }

    #[test]
    fn operator_count_scales_with_cells() {
        let net = nasnet_a(1);
        let n = net.num_operators();
        // 12 cells × ~20 ops + stem.
        assert!((200..=300).contains(&n), "operator count = {n}");
        let small = nasnet_with(1, 44, 6);
        assert!(small.num_operators() < n);
    }

    #[test]
    fn reduction_cells_halve_resolution_and_double_channels() {
        let net = nasnet_a(1);
        let first_out = net.blocks[1].graph.output_shapes()[0];
        let last_out = net.blocks[12].graph.output_shapes()[0];
        assert!(last_out.height < first_out.height);
        assert!(last_out.channels > first_out.channels);
        // Two reduction cells → spatial resolution divided by 4 overall.
        assert_eq!(first_out.height / last_out.height, 4);
        assert_eq!(last_out.channels / first_out.channels, 4);
    }

    #[test]
    fn cell_inputs_and_outputs_are_pairs() {
        let net = nasnet_a(1);
        for block in &net.blocks[1..] {
            assert_eq!(
                block.graph.input_shapes().len(),
                2,
                "{}",
                block.graph.name()
            );
            assert_eq!(block.graph.outputs().len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = nasnet_with(1, 32, 0);
    }
}
