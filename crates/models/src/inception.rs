//! Inception V3 (Szegedy et al., 2016).
//!
//! The network is built as the 11 inception blocks the paper schedules
//! (Table 2): three Inception-A blocks, a grid reduction, four Inception-B
//! blocks, a second grid reduction and two Inception-C blocks. The stem
//! convolutions are folded into the first block and the classifier (global
//! average pooling + fully connected layer) into the last block, so the
//! block count matches the paper's "11 blocks" exactly while every operator
//! of the network is still scheduled.

use crate::common::{avg_pool_3x3_s1, conv_relu, conv_relu_pad, imagenet_input};
use ios_ir::{Block, GraphBuilder, Network, PoolParams, TensorShape, Value};

/// Builds Inception V3 for the given batch size (299×299 RGB input).
#[must_use]
pub fn inception_v3(batch: usize) -> Network {
    let input = imagenet_input(batch, 299);
    let mut blocks = Vec::new();

    // Block 1: stem + Inception-A (288 output channels at 35×35).
    let mut shape = input;
    let (block, out) = block_a(1, shape, true, 32);
    blocks.push(block);
    shape = out;

    // Blocks 2-3: Inception-A.
    for (i, pool_ch) in [(2usize, 64usize), (3, 64)] {
        let (block, out) = block_a(i, shape, false, pool_ch);
        blocks.push(block);
        shape = out;
    }

    // Block 4: grid reduction A (35×35 → 17×17).
    let (block, out) = reduction_a(4, shape);
    blocks.push(block);
    shape = out;

    // Blocks 5-8: Inception-B with growing 7×7 branch widths.
    for (i, ch7) in [(5usize, 128usize), (6, 160), (7, 160), (8, 192)] {
        let (block, out) = block_b(i, shape, ch7);
        blocks.push(block);
        shape = out;
    }

    // Block 9: grid reduction B (17×17 → 8×8).
    let (block, out) = reduction_b(9, shape);
    blocks.push(block);
    shape = out;

    // Block 10: Inception-C.
    let (block, out) = block_c(10, shape, false);
    blocks.push(block);
    shape = out;

    // Block 11: Inception-C + classifier.
    let (block, _) = block_c(11, shape, true);
    blocks.push(block);

    Network::new("inception_v3", input, blocks)
}

/// Inception-A block. When `with_stem` is true the standard Inception V3
/// stem convolutions are prepended (this is the first block of the network).
fn block_a(
    index: usize,
    input: TensorShape,
    with_stem: bool,
    pool_ch: usize,
) -> (Block, TensorShape) {
    let name = format!("inception_a{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let mut x = b.input(0);

    if with_stem {
        x = conv_relu_pad(&mut b, "stem_conv1", x, 32, (3, 3), (2, 2), (0, 0));
        x = conv_relu_pad(&mut b, "stem_conv2", x, 32, (3, 3), (1, 1), (0, 0));
        x = conv_relu(&mut b, "stem_conv3", x, 64, (3, 3), (1, 1));
        x = b.pool("stem_pool1", x, PoolParams::max((3, 3), (2, 2), (0, 0)));
        x = conv_relu(&mut b, "stem_conv4", x, 80, (1, 1), (1, 1));
        x = conv_relu_pad(&mut b, "stem_conv5", x, 192, (3, 3), (1, 1), (0, 0));
        x = b.pool("stem_pool2", x, PoolParams::max((3, 3), (2, 2), (0, 0)));
    }

    // Branch 1: 1×1.
    let b1 = conv_relu(&mut b, format!("{name}_b1_1x1"), x, 64, (1, 1), (1, 1));
    // Branch 2: 1×1 → 5×5.
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x1"), x, 48, (1, 1), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_5x5"), b2, 64, (5, 5), (1, 1));
    // Branch 3: 1×1 → 3×3 → 3×3.
    let b3 = conv_relu(&mut b, format!("{name}_b3_1x1"), x, 64, (1, 1), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_3x3a"), b3, 96, (3, 3), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_3x3b"), b3, 96, (3, 3), (1, 1));
    // Branch 4: avg pool → 1×1.
    let b4 = avg_pool_3x3_s1(&mut b, format!("{name}_b4_pool"), x);
    let b4 = conv_relu(
        &mut b,
        format!("{name}_b4_1x1"),
        b4,
        pool_ch,
        (1, 1),
        (1, 1),
    );

    let cat = b.concat(format!("{name}_concat"), &[b1, b2, b3, b4]);
    let out_shape = b.shape_of(cat);
    (Block::new(b.build(vec![cat])), out_shape)
}

/// Grid reduction A (35×35 → 17×17).
fn reduction_a(index: usize, input: TensorShape) -> (Block, TensorShape) {
    let name = format!("reduction_a{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);
    let b1 = conv_relu_pad(
        &mut b,
        format!("{name}_b1_3x3"),
        x,
        384,
        (3, 3),
        (2, 2),
        (0, 0),
    );
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x1"), x, 64, (1, 1), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_3x3a"), b2, 96, (3, 3), (1, 1));
    let b2 = conv_relu_pad(
        &mut b,
        format!("{name}_b2_3x3b"),
        b2,
        96,
        (3, 3),
        (2, 2),
        (0, 0),
    );
    let b3 = b.pool(
        format!("{name}_pool"),
        x,
        PoolParams::max((3, 3), (2, 2), (0, 0)),
    );
    let cat = b.concat(format!("{name}_concat"), &[b1, b2, b3]);
    let out_shape = b.shape_of(cat);
    (Block::new(b.build(vec![cat])), out_shape)
}

/// Inception-B block (17×17 grid, 768 channels, factorized 7×7 branches).
fn block_b(index: usize, input: TensorShape, ch7: usize) -> (Block, TensorShape) {
    let name = format!("inception_b{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);
    // Branch 1: 1×1.
    let b1 = conv_relu(&mut b, format!("{name}_b1_1x1"), x, 192, (1, 1), (1, 1));
    // Branch 2: 1×1 → 1×7 → 7×1.
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x1"), x, ch7, (1, 1), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x7"), b2, ch7, (1, 7), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_7x1"), b2, 192, (7, 1), (1, 1));
    // Branch 3: 1×1 → 7×1 → 1×7 → 7×1 → 1×7.
    let b3 = conv_relu(&mut b, format!("{name}_b3_1x1"), x, ch7, (1, 1), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_7x1a"), b3, ch7, (7, 1), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_1x7a"), b3, ch7, (1, 7), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_7x1b"), b3, ch7, (7, 1), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_1x7b"), b3, 192, (1, 7), (1, 1));
    // Branch 4: pool → 1×1.
    let b4 = avg_pool_3x3_s1(&mut b, format!("{name}_b4_pool"), x);
    let b4 = conv_relu(&mut b, format!("{name}_b4_1x1"), b4, 192, (1, 1), (1, 1));

    let cat = b.concat(format!("{name}_concat"), &[b1, b2, b3, b4]);
    let out_shape = b.shape_of(cat);
    (Block::new(b.build(vec![cat])), out_shape)
}

/// Grid reduction B (17×17 → 8×8).
fn reduction_b(index: usize, input: TensorShape) -> (Block, TensorShape) {
    let name = format!("reduction_b{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);
    let b1 = conv_relu(&mut b, format!("{name}_b1_1x1"), x, 192, (1, 1), (1, 1));
    let b1 = conv_relu_pad(
        &mut b,
        format!("{name}_b1_3x3"),
        b1,
        320,
        (3, 3),
        (2, 2),
        (0, 0),
    );
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x1"), x, 192, (1, 1), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x7"), b2, 192, (1, 7), (1, 1));
    let b2 = conv_relu(&mut b, format!("{name}_b2_7x1"), b2, 192, (7, 1), (1, 1));
    let b2 = conv_relu_pad(
        &mut b,
        format!("{name}_b2_3x3"),
        b2,
        192,
        (3, 3),
        (2, 2),
        (0, 0),
    );
    let b3 = b.pool(
        format!("{name}_pool"),
        x,
        PoolParams::max((3, 3), (2, 2), (0, 0)),
    );
    let cat = b.concat(format!("{name}_concat"), &[b1, b2, b3]);
    let out_shape = b.shape_of(cat);
    (Block::new(b.build(vec![cat])), out_shape)
}

/// Inception-C block (8×8 grid). This is the block drawn in Figure 10, with
/// the two expanded 1×3 / 3×1 pairs. When `with_classifier` is true, global
/// average pooling and the 1000-way fully connected layer are appended.
fn block_c(index: usize, input: TensorShape, with_classifier: bool) -> (Block, TensorShape) {
    let name = format!("inception_c{index}");
    let mut b = GraphBuilder::new(name.clone(), input);
    let x = b.input(0);
    // Branch 1 (operator `a` of Figure 10): 1×1, 320 channels.
    let b1 = conv_relu(&mut b, format!("{name}_b1_1x1"), x, 320, (1, 1), (1, 1));
    // Branch 2 (`b` then `f`/`g`): 1×1 384 → {1×3, 3×1} in parallel.
    let b2 = conv_relu(&mut b, format!("{name}_b2_1x1"), x, 384, (1, 1), (1, 1));
    let b2a = conv_relu(&mut b, format!("{name}_b2_1x3"), b2, 384, (1, 3), (1, 1));
    let b2b = conv_relu(&mut b, format!("{name}_b2_3x1"), b2, 384, (3, 1), (1, 1));
    // Branch 3 (`c`, `e`, then `h`/`i`): 1×1 448 → 3×3 384 → {1×3, 3×1}.
    let b3 = conv_relu(&mut b, format!("{name}_b3_1x1"), x, 448, (1, 1), (1, 1));
    let b3 = conv_relu(&mut b, format!("{name}_b3_3x3"), b3, 384, (3, 3), (1, 1));
    let b3a = conv_relu(&mut b, format!("{name}_b3_1x3"), b3, 384, (1, 3), (1, 1));
    let b3b = conv_relu(&mut b, format!("{name}_b3_3x1"), b3, 384, (3, 1), (1, 1));
    // Branch 4 (`P` then `d`): pool → 1×1 192.
    let b4 = avg_pool_3x3_s1(&mut b, format!("{name}_b4_pool"), x);
    let b4 = conv_relu(&mut b, format!("{name}_b4_1x1"), b4, 192, (1, 1), (1, 1));

    let cat = b.concat(format!("{name}_concat"), &[b1, b2a, b2b, b3a, b3b, b4]);
    let (out, out_shape): (Value, TensorShape) = if with_classifier {
        let pool = b.pool(format!("{name}_global_pool"), cat, PoolParams::global_avg());
        let fc = b.matmul(format!("{name}_fc"), pool, 1000);
        let s = b.shape_of(fc);
        (fc, s)
    } else {
        let s = b.shape_of(cat);
        (cat, s)
    };
    (Block::new(b.build(vec![out])), out_shape)
}

/// The last Inception V3 block in isolation (the one Figure 10 visualizes),
/// at the given batch size, without the classifier so that only the branch
/// structure is scheduled.
#[must_use]
pub fn inception_v3_last_block(batch: usize) -> ios_ir::Graph {
    let input = TensorShape::new(batch, 2048, 8, 8);
    block_c(11, input, false).0.graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::dag_width;

    #[test]
    fn eleven_blocks_as_in_table2() {
        let net = inception_v3(1);
        assert_eq!(net.num_blocks(), 11);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn operator_count_in_table2_ballpark() {
        // Table 2 reports 119 operators (Conv-Relu units plus the other
        // scheduled operators). The reconstruction lands in the same range.
        let net = inception_v3(1);
        let n = net.num_operators();
        assert!((95..=140).contains(&n), "operator count = {n}");
        let convs = net.num_compute_units();
        assert!((90..=100).contains(&convs), "compute units = {convs}");
    }

    #[test]
    fn spatial_resolution_follows_the_architecture() {
        let net = inception_v3(1);
        // Block 3 (last Inception-A) outputs 35×35.
        let a_out = net.blocks[2].graph.output_shapes()[0];
        assert_eq!((a_out.height, a_out.width), (35, 35));
        assert_eq!(a_out.channels, 288);
        // Block 8 (last Inception-B) outputs 17×17×768.
        let b_out = net.blocks[7].graph.output_shapes()[0];
        assert_eq!((b_out.height, b_out.width, b_out.channels), (17, 17, 768));
        // Block 10 (first Inception-C) outputs 8×8×2048.
        let c_out = net.blocks[9].graph.output_shapes()[0];
        assert_eq!((c_out.height, c_out.width, c_out.channels), (8, 8, 2048));
        // The final block ends in the 1000-way classifier.
        let out = net.blocks[10].graph.output_shapes()[0];
        assert_eq!(out.channels, 1000);
    }

    #[test]
    fn largest_block_matches_table1_shape() {
        // Table 1: the largest Inception V3 block has n = 11 operators and
        // width 6. Our reconstruction folds the stem into the first block,
        // so the largest block is slightly bigger, but the width (the
        // quantity that drives the DP complexity) stays in the same range.
        let net = inception_v3(1);
        let (idx, n) = net.largest_block().unwrap();
        assert!((11..=16).contains(&n), "largest block has {n} ops");
        let width = dag_width(&net.blocks[idx].graph);
        assert!((4..=6).contains(&width), "width = {width}");
    }

    #[test]
    fn total_flops_close_to_reference() {
        // Inception V3 is ~5.7 GFLOPs (11.4 GMACs double-counted) per image.
        let net = inception_v3(1);
        let gflops = net.total_flops() as f64 / 1e9;
        assert!((4.0..=13.0).contains(&gflops), "total = {gflops} GFLOPs");
        // FLOPs scale with batch.
        let net8 = inception_v3(8);
        assert_eq!(net8.total_flops(), 8 * net.total_flops());
    }

    #[test]
    fn last_block_has_figure10_structure() {
        let g = inception_v3_last_block(1);
        // 9 convolutions + pool + concat = 11 operators, matching Table 1's
        // n = 11 for Inception V3.
        assert_eq!(
            g.ops().iter().filter(|o| o.kind.is_compute_unit()).count(),
            9
        );
        assert_eq!(g.len(), 11);
        let w = dag_width(&g);
        assert!((4..=6).contains(&w), "width = {w}");
    }
}
