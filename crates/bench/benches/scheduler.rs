//! Criterion benchmark: cost of the IOS dynamic-programming search itself
//! (the right axis of Figure 9), as a function of the pruning parameters and
//! of the block width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ios_core::{schedule_graph, IosVariant, SchedulerConfig, SimCostModel};
use ios_models::{figure2_block, inception::inception_v3_last_block, worst_case_chains};
use ios_sim::{DeviceKind, Simulator};

fn bench_pruning(c: &mut Criterion) {
    let graph = inception_v3_last_block(1);
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let mut group = c.benchmark_group("scheduler/pruning");
    group.sample_size(10);
    for (r, s) in [(1usize, 3usize), (2, 3), (3, 3), (3, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{r}_s{s}")),
            &(r, s),
            |b, &(r, s)| {
                let config = SchedulerConfig::for_variant(IosVariant::Both).with_pruning(r, s);
                b.iter(|| schedule_graph(&graph, &cost, &config));
            },
        );
    }
    group.finish();
}

fn bench_block_width(c: &mut Criterion) {
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let config = SchedulerConfig::paper_default();
    let mut group = c.benchmark_group("scheduler/width");
    group.sample_size(10);
    for width in [2usize, 3, 4] {
        let net = worst_case_chains(width, 3, 1);
        let graph = net.blocks[0].graph.clone();
        group.bench_with_input(BenchmarkId::from_parameter(width), &graph, |b, graph| {
            b.iter(|| schedule_graph(graph, &cost, &config));
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let net = figure2_block(1);
    let graph = net.blocks[0].graph.clone();
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let mut group = c.benchmark_group("scheduler/variant");
    group.sample_size(20);
    for variant in [IosVariant::Merge, IosVariant::Parallel, IosVariant::Both] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.to_string()),
            &variant,
            |b, &v| {
                let config = SchedulerConfig::for_variant(v);
                b.iter(|| schedule_graph(&graph, &cost, &config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_block_width, bench_variants);
criterion_main!(benches);
