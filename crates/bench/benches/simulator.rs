//! Criterion benchmark: throughput of the stage-latency measurement (the
//! simulator call the dynamic program makes for every candidate stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ios_ir::OpId;
use ios_models::figure2_block;
use ios_sim::{DeviceKind, Simulator};

fn bench_stage_measurement(c: &mut Criterion) {
    let net = figure2_block(1);
    let graph = &net.blocks[0].graph;
    let sim = Simulator::new(DeviceKind::TeslaV100);
    let mut group = c.benchmark_group("simulator/measure_stage");
    group.sample_size(50);

    let sequential: Vec<Vec<OpId>> = vec![(0..4).map(OpId).collect()];
    let concurrent: Vec<Vec<OpId>> = (0..4).map(|i| vec![OpId(i)]).collect();
    for (label, groups) in [("sequential4", &sequential), ("concurrent4", &concurrent)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), groups, |b, groups| {
            b.iter(|| sim.measure_stage(graph, groups));
        });
    }
    group.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/batch");
    group.sample_size(30);
    for batch in [1usize, 32, 128] {
        let net = figure2_block(batch);
        let graph = net.blocks[0].graph.clone();
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let groups: Vec<Vec<OpId>> = (0..4).map(|i| vec![OpId(i)]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| sim.measure_stage(&graph, &groups));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage_measurement, bench_batch_scaling);
criterion_main!(benches);
