//! Criterion micro-bench: the im2col + blocked-GEMM convolution engine vs
//! the naive 7-deep reference loop, on Inception- and SqueezeNet-shaped
//! layers. The CI acceptance gate for the same comparison lives in
//! `src/bin/conv_gate.rs`; this bench is for profiling kernel changes.
//!
//! Run with: `cargo bench -p ios-bench --bench conv_kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ios_backend::ops_cpu::{conv2d_naive, conv2d_pooled, conv_weights};
use ios_backend::{ScratchPool, TensorData};
use ios_bench::conv_bench_shapes;

fn bench_conv_kernels(c: &mut Criterion) {
    let arena = ScratchPool::new();
    let mut group = c.benchmark_group("conv_kernels");
    group.sample_size(5);
    for case in conv_bench_shapes(true) {
        let input = TensorData::random(case.input, 7);
        let weights = conv_weights(
            11,
            case.params.out_channels,
            case.input.channels / case.params.groups,
            case.params.kernel,
        );
        group.bench_with_input(BenchmarkId::new("naive", case.name), &case, |b, case| {
            b.iter(|| conv2d_naive(&input, &case.params, &weights))
        });
        group.bench_with_input(
            BenchmarkId::new("im2col_gemm", case.name),
            &case,
            |b, case| {
                b.iter(|| {
                    let out = conv2d_pooled(&input, &case.params, &weights, &arena);
                    arena.recycle_tensor(out);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conv_kernels);
criterion_main!(benches);
