//! Criterion benchmark: end-to-end cost of producing and evaluating the
//! schedules compared in Figures 6 and 7, on the smallest benchmark network
//! (SqueezeNet) so the suite stays quick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ios_core::{
    greedy_network_schedule, optimize_network, sequential_network_schedule, IosVariant,
    SchedulerConfig, SimCostModel,
};
use ios_frameworks::{Framework, FrameworkKind};
use ios_sim::{DeviceKind, Simulator};

fn bench_schedules_squeezenet(c: &mut Criterion) {
    let net = ios_models::squeezenet(1);
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let mut group = c.benchmark_group("e2e/squeezenet");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| sequential_network_schedule(&net, &cost))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_network_schedule(&net, &cost))
    });
    group.bench_function("ios_both", |b| {
        let config = SchedulerConfig::for_variant(IosVariant::Both);
        b.iter(|| optimize_network(&net, &cost, &config))
    });
    group.finish();
}

fn bench_frameworks_squeezenet(c: &mut Criterion) {
    let net = ios_models::squeezenet(1);
    let mut group = c.benchmark_group("e2e/frameworks");
    group.sample_size(10);
    for kind in [
        FrameworkKind::TensorFlow,
        FrameworkKind::TensorRt,
        FrameworkKind::TvmAutoTune,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &k| {
                let fw = Framework::new(k, DeviceKind::TeslaV100);
                b.iter(|| fw.measure(&net));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedules_squeezenet,
    bench_frameworks_squeezenet
);
criterion_main!(benches);
