//! # ios-bench — experiment harness for the IOS reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared plumbing in this library: schedule/framework sweeps, table
//! rendering, normalization, geometric means and JSON report output.
//!
//! Every binary accepts:
//!
//! * `--device v100|k80|2080ti` — the simulated GPU (default V100);
//! * `--batch N` — batch size where applicable (default 1);
//! * `--quick` — smaller model variants and tighter pruning so the full
//!   suite finishes quickly on a laptop-class machine;
//! * `--json PATH` — also write the rows as a JSON report.
//!
//! Run everything with `cargo run --release -p ios-bench --bin run_all`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ios_core::{
    greedy_network_schedule, optimize_network, sequential_network_schedule, IosVariant,
    NetworkSchedule, SchedulerConfig, SimCostModel,
};
use ios_frameworks::{Framework, FrameworkKind};
use ios_ir::Network;
use ios_models::RandWireConfig;
use ios_sim::{DeviceKind, Simulator};
use serde::Serialize;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Simulated device.
    pub device: DeviceKind,
    /// Batch size.
    pub batch: usize,
    /// Quick mode: smaller models, tighter pruning.
    pub quick: bool,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            device: DeviceKind::TeslaV100,
            batch: 1,
            quick: false,
            json: None,
        }
    }
}

impl BenchOptions {
    /// Parses the options from `std::env::args`.
    ///
    /// Unknown arguments are ignored so binaries can add their own flags.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = BenchOptions::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--device" if i + 1 < args.len() => {
                    opts.device = parse_device(&args[i + 1]);
                    i += 1;
                }
                "--batch" if i + 1 < args.len() => {
                    opts.batch = args[i + 1].parse().unwrap_or(1);
                    i += 1;
                }
                "--json" if i + 1 < args.len() => {
                    opts.json = Some(args[i + 1].clone());
                    i += 1;
                }
                "--quick" => opts.quick = true,
                _ => {}
            }
            i += 1;
        }
        if std::env::var("IOS_BENCH_QUICK").is_ok() {
            opts.quick = true;
        }
        opts
    }

    /// The scheduler configuration implied by the options (quick mode uses
    /// a tighter pruning strategy, cf. Figure 9).
    #[must_use]
    pub fn scheduler_config(&self, variant: IosVariant) -> SchedulerConfig {
        let cfg = SchedulerConfig::for_variant(variant);
        if self.quick {
            cfg.with_pruning(2, 4)
        } else {
            cfg
        }
    }

    /// The benchmark networks of Table 2 at this batch size (smaller
    /// variants in quick mode).
    #[must_use]
    pub fn benchmark_networks(&self) -> Vec<Network> {
        if self.quick {
            vec![
                ios_models::inception_v3(self.batch),
                ios_models::randwire::randwire(
                    self.batch,
                    RandWireConfig {
                        nodes_per_stage: 12,
                        ..RandWireConfig::default()
                    },
                ),
                ios_models::nasnet::nasnet_with(self.batch, 44, 6),
                ios_models::squeezenet(self.batch),
            ]
        } else {
            ios_models::paper_benchmarks(self.batch)
        }
    }
}

fn parse_device(name: &str) -> DeviceKind {
    match name.to_ascii_lowercase().as_str() {
        "k80" => DeviceKind::TeslaK80,
        "2080ti" | "rtx2080ti" => DeviceKind::Rtx2080Ti,
        "1080" | "gtx1080" => DeviceKind::Gtx1080,
        "980ti" | "gtx980ti" => DeviceKind::Gtx980Ti,
        "a100" => DeviceKind::A100,
        _ => DeviceKind::TeslaV100,
    }
}

/// One labelled measurement row (latency + derived throughput).
#[derive(Debug, Clone, Serialize)]
pub struct MeasurementRow {
    /// Method / framework label.
    pub label: String,
    /// Network name.
    pub network: String,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in images per second.
    pub throughput: f64,
}

/// Builds the five schedules compared in Figure 6 / Figure 14 and measures
/// them: Sequential, Greedy, IOS-Merge, IOS-Parallel, IOS-Both.
#[must_use]
pub fn schedule_comparison(network: &Network, opts: &BenchOptions) -> Vec<MeasurementRow> {
    let cost = SimCostModel::new(Simulator::new(opts.device));
    let batch = network.input_shape.batch;
    let mut rows = Vec::new();
    let mut push = |label: &str, schedule: &NetworkSchedule| {
        rows.push(MeasurementRow {
            label: label.to_string(),
            network: network.name.clone(),
            latency_ms: schedule.latency_ms(),
            throughput: schedule.throughput(batch),
        });
    };
    push("Sequential", &sequential_network_schedule(network, &cost));
    push("Greedy", &greedy_network_schedule(network, &cost));
    for variant in [IosVariant::Merge, IosVariant::Parallel, IosVariant::Both] {
        let report = optimize_network(network, &cost, &opts.scheduler_config(variant));
        push(&variant.to_string(), &report.schedule);
    }
    rows
}

/// Measures the cuDNN-based baseline frameworks plus IOS on one network
/// (Figure 7 / Figure 15), or all frameworks when `include_tvm` is set
/// (Figure 11 / Figure 12 building block).
#[must_use]
pub fn framework_comparison(
    network: &Network,
    opts: &BenchOptions,
    include_tvm: bool,
) -> Vec<MeasurementRow> {
    let batch = network.input_shape.batch;
    let kinds: Vec<FrameworkKind> = if include_tvm {
        FrameworkKind::all().to_vec()
    } else {
        FrameworkKind::cudnn_baselines().to_vec()
    };
    let mut rows: Vec<MeasurementRow> = kinds
        .iter()
        .map(|kind| {
            let result = Framework::new(*kind, opts.device).measure(network);
            MeasurementRow {
                label: kind.to_string(),
                network: network.name.clone(),
                latency_ms: result.latency_us / 1e3,
                throughput: result.throughput,
            }
        })
        .collect();
    let cost = SimCostModel::new(Simulator::new(opts.device));
    let ios = optimize_network(network, &cost, &opts.scheduler_config(IosVariant::Both)).schedule;
    rows.push(MeasurementRow {
        label: "IOS".to_string(),
        network: network.name.clone(),
        latency_ms: ios.latency_ms(),
        throughput: ios.throughput(batch),
    });
    rows
}

/// Geometric mean of a non-empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Normalizes throughputs to the best value per network (the y-axis of
/// Figures 6, 7, 14 and 15): returns `(label, normalized)` pairs.
#[must_use]
pub fn normalize_by_best(rows: &[MeasurementRow]) -> Vec<(String, f64)> {
    let best = rows.iter().map(|r| r.throughput).fold(0.0f64, f64::max);
    rows.iter()
        .map(|r| {
            (
                r.label.clone(),
                if best > 0.0 { r.throughput / best } else { 0.0 },
            )
        })
        .collect()
}

/// Renders an ASCII table.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    let _ = writeln!(out, "| {} |", header_line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{c:<width$}",
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    out
}

/// Formats a float with three significant decimals.
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// One convolution layer shape benchmarked by the `conv_kernels` bench and
/// the `conv_gate` CI binary.
#[derive(Debug, Clone)]
pub struct ConvCase {
    /// Short shape label.
    pub name: &'static str,
    /// Input tensor shape.
    pub input: ios_ir::TensorShape,
    /// Convolution parameters.
    pub params: ios_ir::Conv2dParams,
}

/// The convolution shapes the kernel bench and gate run: Inception- and
/// SqueezeNet-shaped layers covering 3×3, pointwise, strided-downsample
/// and grouped cases. `quick` halves the channel counts.
#[must_use]
pub fn conv_bench_shapes(quick: bool) -> Vec<ConvCase> {
    use ios_ir::{Conv2dParams, TensorShape};
    let s = if quick { 2 } else { 1 };
    vec![
        ConvCase {
            // Inception-v3 mixed-block 3×3 branch shape.
            name: "inception_3x3",
            input: TensorShape::new(1, 96 / s, 15, 15),
            params: Conv2dParams::relu(96 / s, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // Inception 1×1 bottleneck: the pointwise fast path.
            name: "inception_1x1",
            input: TensorShape::new(1, 128 / s, 15, 15),
            params: Conv2dParams::relu(128 / s, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // SqueezeNet fire-module 3×3 expand.
            name: "squeezenet_expand3",
            input: TensorShape::new(1, 16, 27, 27),
            params: Conv2dParams::relu(64 / s, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // Strided downsampling layer.
            name: "downsample_s2",
            input: TensorShape::new(1, 64 / s, 27, 27),
            params: Conv2dParams::relu(64 / s, (3, 3), (2, 2), (1, 1)),
        },
    ]
}

/// The convolution shapes the `pack_gate` CI binary runs: the serving-hot
/// layers of real ImageNet backbones, where the patch matrix outgrows the
/// L2 cache and the packed kernel's block-outer streaming pays — VGG/ResNet
/// early 3×3 stages at 112²–28² spatial extent — plus two compact
/// Inception shapes (where both paths are compute-bound) so small-layer
/// regressions stay visible. Unlike [`conv_bench_shapes`], the set is not
/// scaled down in quick mode: shrinking the channels would pull the patch
/// matrices back under the L2 cache and change the regime the gate
/// measures; `pack_gate --quick` reduces the iteration count instead.
#[must_use]
pub fn pack_bench_shapes() -> Vec<ConvCase> {
    use ios_ir::{Conv2dParams, TensorShape};
    vec![
        ConvCase {
            // VGG conv2-style early layer: huge spatial extent.
            name: "vgg_3x3_112",
            input: TensorShape::new(1, 64, 112, 112),
            params: Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet conv2_x body: 56×56, 64 channels.
            name: "resnet_3x3_56",
            input: TensorShape::new(1, 64, 56, 56),
            params: Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet conv3_x body: 28×28, 128 channels.
            name: "resnet_3x3_28",
            input: TensorShape::new(1, 128, 28, 28),
            params: Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet conv3 downsample entry: strided 3×3.
            name: "resnet_3x3_s2",
            input: TensorShape::new(1, 128, 56, 56),
            params: Conv2dParams::relu(128, (3, 3), (2, 2), (1, 1)),
        },
        ConvCase {
            // ResNet bottleneck expansion: wide pointwise, pure GEMM.
            name: "pointwise_56",
            input: TensorShape::new(1, 64, 56, 56),
            params: Conv2dParams::relu(256, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // Inception mixed-block 3×3 branch: compact, compute-bound.
            name: "inception_3x3",
            input: TensorShape::new(1, 96, 15, 15),
            params: Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // Inception 1×1 bottleneck: compact pointwise.
            name: "inception_1x1",
            input: TensorShape::new(1, 128, 15, 15),
            params: Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)),
        },
    ]
}

/// The convolution shapes the `quant_gate` CI binary runs: the layers of
/// serving CNN backbones that actually *carry* a bias + residual-add +
/// ReLU epilogue — ResNet basic-block ending 3×3s and bottleneck
/// expansion 1×1s (the convs the residual joins), MobileNetV2-style
/// shallow-`k` expansion pointwises, and Inception branch convs feeding a
/// concat. Epilogue fusion pays where the epilogue's whole-tensor passes
/// are a real fraction of the conv (shallow `k`, large output planes);
/// deep-`k` interior 3×3s keep their epilogue-free fast path and stay
/// covered by [`pack_bench_shapes`] / `pack_gate`. Like the pack set, the
/// shapes are never scaled down in quick mode — that would change the
/// compute-vs-traffic regime the gate measures.
#[must_use]
pub fn quant_bench_shapes() -> Vec<ConvCase> {
    use ios_ir::{Conv2dParams, TensorShape};
    vec![
        ConvCase {
            // ResNet basic-block conv2: the 3×3 the residual joins.
            name: "resnet_3x3_56",
            input: TensorShape::new(1, 64, 56, 56),
            params: Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet bottleneck expansion at 56²: 64 → 256 pointwise.
            name: "bottleneck_1x1_56",
            input: TensorShape::new(1, 64, 56, 56),
            params: Conv2dParams::relu(256, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // ResNet conv3 bottleneck expansion at 28²: 128 → 512.
            name: "bottleneck_1x1_28",
            input: TensorShape::new(1, 128, 28, 28),
            params: Conv2dParams::relu(512, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // MobileNetV2-style expansion at 112²: shallow k, huge plane.
            name: "mb_expand_1x1_112",
            input: TensorShape::new(1, 32, 112, 112),
            params: Conv2dParams::relu(192, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // MobileNetV2-style expansion at 56².
            name: "mb_expand_1x1_56",
            input: TensorShape::new(1, 24, 56, 56),
            params: Conv2dParams::relu(144, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // Inception mixed-block 3×3 branch feeding the concat.
            name: "inception_3x3",
            input: TensorShape::new(1, 96, 15, 15),
            params: Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // Inception 1×1 bottleneck branch.
            name: "inception_1x1",
            input: TensorShape::new(1, 128, 15, 15),
            params: Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)),
        },
    ]
}

/// The convolution shapes the `simd_gate` CI binary runs: the f32 GEMM
/// register tile under its serving-hot regimes — ResNet body 3×3s (deep
/// `k`, the tile-bound case the AVX2 kernel targets), a strided
/// downsample, a bottleneck pointwise (pure GEMM), and a compact
/// Inception 3×3 so small-`m` layers with edge tiles stay visible. Like
/// the pack/quant sets, never scaled down in quick mode — that would
/// shift the compute-vs-traffic regime; `simd_gate --quick` reduces the
/// round count instead.
#[must_use]
pub fn simd_bench_shapes() -> Vec<ConvCase> {
    use ios_ir::{Conv2dParams, TensorShape};
    vec![
        ConvCase {
            // ResNet conv2_x body: 56×56, 64 channels, k = 576.
            name: "resnet_3x3_56",
            input: TensorShape::new(1, 64, 56, 56),
            params: Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet conv3_x body: 28×28, 128 channels, k = 1152.
            name: "resnet_3x3_28",
            input: TensorShape::new(1, 128, 28, 28),
            params: Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)),
        },
        ConvCase {
            // ResNet conv3 downsample entry: strided 3×3.
            name: "resnet_3x3_s2",
            input: TensorShape::new(1, 128, 56, 56),
            params: Conv2dParams::relu(128, (3, 3), (2, 2), (1, 1)),
        },
        ConvCase {
            // ResNet bottleneck expansion pointwise: pure GEMM, k = 128.
            name: "bottleneck_1x1_28",
            input: TensorShape::new(1, 128, 28, 28),
            params: Conv2dParams::relu(512, (1, 1), (1, 1), (0, 0)),
        },
        ConvCase {
            // Inception mixed-block 3×3 branch: compact, edge tiles.
            name: "inception_3x3",
            input: TensorShape::new(1, 96, 15, 15),
            params: Conv2dParams::relu(96, (3, 3), (1, 1), (1, 1)),
        },
    ]
}

/// Median of a sample set (averages the middle pair for even counts).
/// The gate binaries use this over per-round speedup ratios so one noisy
/// round on a shared CI host cannot flip a verdict.
#[must_use]
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Writes any serializable value as pretty JSON if a path was requested.
pub fn maybe_write_json<T: Serialize>(opts: &BenchOptions, value: &T) {
    if let Some(path) = &opts.json {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write {path}: {e}");
                }
            }
            Err(e) => eprintln!("failed to serialize report: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_normalize() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        let rows = vec![
            MeasurementRow {
                label: "a".into(),
                network: "n".into(),
                latency_ms: 2.0,
                throughput: 500.0,
            },
            MeasurementRow {
                label: "b".into(),
                network: "n".into(),
                latency_ms: 1.0,
                throughput: 1000.0,
            },
        ];
        let normalized = normalize_by_best(&rows);
        assert_eq!(normalized[1].1, 1.0);
        assert_eq!(normalized[0].1, 0.5);
    }

    #[test]
    fn table_rendering_contains_cells() {
        let t = render_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("== t =="));
        assert!(t.contains("| a "));
        assert!(t.contains("| 1 "));
        assert_eq!(fmt3(1.23456), "1.235");
    }

    #[test]
    fn schedule_comparison_orders_ios_first_on_figure2() {
        let opts = BenchOptions::default();
        let net = ios_models::figure2_block(1);
        let rows = schedule_comparison(&net, &opts);
        assert_eq!(rows.len(), 5);
        let best_label = rows
            .iter()
            .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).unwrap())
            .unwrap()
            .label
            .clone();
        assert_eq!(best_label, "IOS-Both");
        let seq = rows.iter().find(|r| r.label == "Sequential").unwrap();
        let both = rows.iter().find(|r| r.label == "IOS-Both").unwrap();
        assert!(seq.latency_ms / both.latency_ms > 1.1);
    }

    #[test]
    fn framework_comparison_includes_ios_row() {
        let opts = BenchOptions::default();
        let net = ios_models::figure2_block(1);
        let rows = framework_comparison(&net, &opts, false);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.label == "IOS"));
        assert!(rows.iter().any(|r| r.label == "TensorRT"));
    }

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
        // A single outlier round must not move the verdict.
        assert_eq!(median(&mut [1.0, 1.0, 100.0]), 1.0);
    }

    #[test]
    fn simd_shapes_cover_deep_k_and_edge_tiles() {
        let shapes = simd_bench_shapes();
        assert!(shapes.len() >= 4);
        assert!(shapes.iter().any(|c| c.name == "resnet_3x3_56"));
        assert!(shapes.iter().any(|c| c.params.kernel == (1, 1)));
    }

    #[test]
    fn options_parse_device_names() {
        assert_eq!(parse_device("k80"), DeviceKind::TeslaK80);
        assert_eq!(parse_device("2080ti"), DeviceKind::Rtx2080Ti);
        assert_eq!(parse_device("anything"), DeviceKind::TeslaV100);
        let opts = BenchOptions::default();
        assert_eq!(opts.batch, 1);
        assert!(!opts.quick);
    }
}
