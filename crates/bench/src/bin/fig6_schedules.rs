//! Figure 6 (V100) / Figure 14 (RTX 2080 Ti with `--device 2080ti`):
//! normalized throughput of Sequential, Greedy, IOS-Merge, IOS-Parallel and
//! IOS-Both across the benchmark CNNs at batch one.

use ios_bench::{
    fmt3, geomean, maybe_write_json, normalize_by_best, render_table, schedule_comparison,
    BenchOptions,
};
use std::collections::BTreeMap;

fn main() {
    let opts = BenchOptions::from_args();
    let networks = opts.benchmark_networks();
    let mut per_method: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut all_rows = Vec::new();
    let mut table_rows = Vec::new();

    for net in &networks {
        let rows = schedule_comparison(net, &opts);
        let normalized = normalize_by_best(&rows);
        for ((label, norm), row) in normalized.iter().zip(&rows) {
            per_method.entry(label.clone()).or_default().push(*norm);
            table_rows.push(vec![
                net.name.clone(),
                label.clone(),
                fmt3(row.latency_ms),
                fmt3(row.throughput),
                fmt3(*norm),
            ]);
        }
        all_rows.extend(rows);
    }
    for (label, values) in &per_method {
        table_rows.push(vec![
            "GeoMean".to_string(),
            label.clone(),
            String::new(),
            String::new(),
            fmt3(geomean(values)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 6/14: schedule comparison on {} (batch {})",
                opts.device, opts.batch
            ),
            &[
                "network",
                "schedule",
                "latency (ms)",
                "images/s",
                "normalized"
            ],
            &table_rows
        )
    );
    println!("paper shape: IOS-Both best everywhere; greedy good on RandWire/NasNet but hurts SqueezeNet; IOS-Merge == Sequential where nothing merges");
    maybe_write_json(&opts, &all_rows);
}
