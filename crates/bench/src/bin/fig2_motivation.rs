//! Figure 2: sequential vs. greedy vs. IOS schedules on the four-convolution
//! motivating block, with per-stage utilization.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{
    greedy_network_schedule, optimize_network, sequential_network_schedule, IosVariant,
    NetworkSchedule, SimCostModel,
};
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let net = ios_models::figure2_block(opts.batch);
    let cost = SimCostModel::new(Simulator::new(opts.device));

    let seq = sequential_network_schedule(&net, &cost);
    let greedy = greedy_network_schedule(&net, &cost);
    let ios = optimize_network(&net, &cost, &opts.scheduler_config(IosVariant::Both)).schedule;

    let device = opts.device.spec();
    let describe = |label: &str, s: &NetworkSchedule| -> Vec<String> {
        let total_flops: f64 = net.total_flops() as f64;
        let util = total_flops / (s.latency_us * device.peak_flops_per_us());
        vec![
            label.to_string(),
            s.num_stages().to_string(),
            fmt3(s.latency_ms()),
            format!("{:.0}%", util * 100.0),
        ]
    };
    let rows = vec![
        describe("Sequential", &seq),
        describe("Greedy", &greedy),
        describe("IOS", &ios),
    ];
    println!(
        "{}",
        render_table(
            "Figure 2: schedules for the motivating block",
            &["schedule", "stages", "latency (ms)", "avg utilization"],
            &rows
        )
    );
    println!("paper: sequential 0.48 ms / 48%, greedy 0.37 ms / 62%, IOS 0.33 ms / 70%");
    for (label, s) in [("greedy", &greedy), ("ios", &ios)] {
        println!("{label} schedule structure:");
        for (block, schedule) in net.blocks.iter().zip(&s.block_schedules) {
            print!("{}", schedule.render(&block.graph));
        }
    }
    let report: Vec<Vec<String>> = rows;
    maybe_write_json(&opts, &report);
}
