//! Figure 9: trade-off between optimized latency and optimization cost for
//! pruning parameters r ∈ {1, 2, 3} and s ∈ {3, 8} on Inception V3 and
//! NasNet.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{optimize_network, IosVariant, SchedulerConfig, SimCostModel};
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let networks = if opts.quick {
        vec![ios_models::inception_v3(opts.batch)]
    } else {
        vec![
            ios_models::inception_v3(opts.batch),
            ios_models::nasnet_a(opts.batch),
        ]
    };
    let mut rows = Vec::new();
    for net in &networks {
        for s in [3usize, 8] {
            for r in [1usize, 2, 3] {
                let cost = SimCostModel::new(Simulator::new(opts.device));
                let config = SchedulerConfig::for_variant(IosVariant::Both).with_pruning(r, s);
                let report = optimize_network(net, &cost, &config);
                rows.push(vec![
                    net.name.clone(),
                    format!("r={r} s={s}"),
                    fmt3(report.schedule.latency_ms()),
                    report.measurements.to_string(),
                    report.transitions.to_string(),
                    fmt3(report.search_seconds),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 9: pruning trade-off (latency vs optimization cost)",
            &[
                "network",
                "pruning",
                "latency (ms)",
                "#measurements",
                "#transitions",
                "search (s)"
            ],
            &rows
        )
    );
    println!(
        "paper shape: smaller r/s cut the optimization cost sharply at a small latency penalty"
    );
    maybe_write_json(&opts, &rows);
}
