//! `telemetry_gate` — CI acceptance gate for the `ios-telemetry` subsystem.
//!
//! The observability layer is only allowed to stay permanently wired into
//! the serving hot loop if it is effectively free when nobody is looking
//! and honest when somebody is. Two bars, both measured, both enforced:
//!
//! * **Disabled-tracer overhead ≤ 2 %.** The instrumentation is compiled
//!   in unconditionally, so the cost of a *disabled* site is the one that
//!   every request always pays. The gate measures that cost directly (a
//!   tight loop of span create/drop on a disabled tracer), counts how many
//!   sites one served request actually crosses (by enabling the global
//!   tracer around a closed-loop serving run and counting records), and
//!   requires `sites/request x cost/site` to stay under 2 % of the
//!   measured per-request wall time.
//!
//! * **Histogram percentile error ≤ 5 %.** Latency percentiles in
//!   `MetricsSnapshot` come from the log-bucketed [`Histogram`], whose
//!   design bound is 1/64 ≈ 1.6 % relative error. The gate records a
//!   deterministic log-uniform workload (the shape serving latencies
//!   take: microseconds to seconds), compares every reported percentile
//!   against the exact nearest-rank value of the sorted data, and also
//!   requires the count and sum to match exactly.
//!
//! The JSON report (`BENCH_telemetry.json`, plus `--json PATH`) records
//! every measured number behind both bars.
//!
//! Run with: `cargo run --release -p ios-bench --bin telemetry_gate`
//! (`--quick` shortens the serving stream and the sampled workload).

use ios_backend::TensorData;
use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
use ios_serve::{ServeConfig, ServeEngine};
use ios_telemetry::{tracer, Histogram, Tracer};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PercentileRow {
    p: f64,
    exact_ns: u64,
    histogram_ns: u64,
    rel_err_pct: f64,
}

#[derive(Serialize)]
struct Report {
    /// Requests served per timed phase.
    requests: usize,
    /// Measured cost of one *disabled* span site, nanoseconds.
    per_site_ns: f64,
    /// Trace records one served request produces when enabled.
    sites_per_request: f64,
    /// Closed-loop wall time per request, microseconds.
    request_us: f64,
    /// `sites_per_request x per_site_ns / request_time`, percent.
    overhead_pct: f64,
    overhead_bar_pct: f64,
    /// Values recorded into the accuracy-test histogram.
    histogram_values: usize,
    percentiles: Vec<PercentileRow>,
    /// Worst observed percentile error, percent.
    max_rel_err_pct: f64,
    err_bar_pct: f64,
    /// The histogram's design bound (1/64), percent, for reference.
    design_bound_pct: f64,
    pass: bool,
}

/// A two-block branchy network — small enough that a closed-loop request
/// completes in well under a millisecond, branchy enough that a request
/// crosses every instrumentation lane (batcher, engine, executor stages).
fn gate_network() -> Network {
    let input = TensorShape::new(1, 8, 12, 12);
    let mut b = GraphBuilder::new("telemetry_gate_b0", input);
    let x = b.input(0);
    let a = b.conv2d("a3", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c1", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    let block0 = Block::new(b.build(vec![cat]));
    let mut b = GraphBuilder::with_inputs("telemetry_gate_b1", block0.graph.output_shapes());
    let x = b.input(0);
    let d = b.conv2d("d1", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let block1 = Block::new(b.build(vec![d]));
    Network::new("telemetry_gate_net", input, vec![block0, block1])
}

/// Cost of one disabled span site: create + drop an inert guard. Best of
/// `reps` tight loops, nanoseconds per site.
fn disabled_site_cost_ns(iters: u64, reps: usize) -> f64 {
    // A local tracer takes the identical code path as the process-global
    // one (`span()` checks one relaxed atomic and returns an inert guard)
    // without depending on global state.
    let t = Tracer::with_capacity(64);
    assert!(!t.is_enabled());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(t.span("gate.noop", "gate"));
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    assert!(
        t.records().is_empty(),
        "a disabled tracer must not record anything"
    );
    best
}

/// Serves `n` closed-loop requests (submit, wait, repeat) and returns the
/// wall time per request in nanoseconds.
fn serve_closed_loop(engine: &ServeEngine, network: &Network, n: usize, seed0: u64) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let _ = engine
            .submit(TensorData::random(network.input_shape, seed0 + i as u64))
            .expect("accepted")
            .wait();
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

/// Deterministic 64-bit LCG (the bench harness takes no RNG dependency).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

/// A log-uniform duration in nanoseconds, spanning ~1 µs to ~1 s — the
/// dynamic range serving latencies actually cover, and the regime where a
/// linear-bucket histogram would be hopeless.
fn log_uniform_ns(state: &mut u64) -> u64 {
    let e = 10 + (lcg(state) % 20); // octave in [2^10, 2^29]
    (1u64 << e) + lcg(state) % (1u64 << e)
}

fn main() {
    let opts = BenchOptions::from_args();
    let requests = if opts.quick { 32 } else { 128 };
    let warmup = 8;
    let (site_iters, site_reps) = if opts.quick {
        (1_000_000u64, 3)
    } else {
        (5_000_000u64, 5)
    };
    let histogram_values = if opts.quick { 20_000 } else { 200_000 };

    // --- Bar 1: disabled-tracer overhead on the serving hot loop --------
    let per_site_ns = disabled_site_cost_ns(site_iters, site_reps);

    let network = gate_network();
    // max_batch 1: every request dispatches immediately, so the closed
    // loop times the per-request hot path, not the batcher's wait policy.
    let engine = ServeEngine::start(
        network.clone(),
        ServeConfig::default().with_max_batch(1).with_workers(1),
    );
    // Warm-up: first requests pay schedule optimization + cache fill.
    serve_closed_loop(&engine, &network, warmup, 0);

    // Timed phase, tracer disabled — the configuration every production
    // request runs under.
    assert!(!tracer().is_enabled());
    let request_ns = serve_closed_loop(&engine, &network, requests, 1_000);

    // Counting phase, tracer enabled: how many sites does one request
    // actually cross end to end?
    tracer().clear();
    let dropped_before = tracer().dropped();
    tracer().set_enabled(true);
    serve_closed_loop(&engine, &network, requests, 10_000);
    tracer().set_enabled(false);
    let records = tracer().records().len() as u64 + (tracer().dropped() - dropped_before);
    tracer().clear();
    engine.shutdown();

    let sites_per_request = records as f64 / requests as f64;
    assert!(
        sites_per_request >= 3.0,
        "an enabled request must cross the batcher, engine and executor lanes \
         (saw {sites_per_request:.1} records/request — instrumentation went missing?)"
    );
    let overhead_pct = 100.0 * sites_per_request * per_site_ns / request_ns;
    let overhead_bar_pct = 2.0;

    // --- Bar 2: histogram percentile accuracy ---------------------------
    let histogram = Histogram::new();
    let mut state = 0x00c0_ffee_u64;
    let mut values: Vec<u64> = Vec::with_capacity(histogram_values);
    for _ in 0..histogram_values {
        let v = log_uniform_ns(&mut state);
        histogram.record(v);
        values.push(v);
    }
    assert_eq!(histogram.count(), histogram_values as u64);
    assert_eq!(
        histogram.sum(),
        values.iter().sum::<u64>(),
        "count and sum must be exact, only quantiles are approximate"
    );
    values.sort_unstable();

    let ps = [50.0, 90.0, 95.0, 99.0, 99.9];
    let approx = histogram.percentiles(&ps).expect("non-empty");
    let mut percentile_rows = Vec::with_capacity(ps.len());
    let mut max_rel_err_pct = 0.0f64;
    for (&p, &histogram_ns) in ps.iter().zip(&approx) {
        let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
        let exact_ns = values[rank.min(values.len()) - 1];
        let rel_err_pct = 100.0 * (histogram_ns as f64 - exact_ns as f64).abs() / exact_ns as f64;
        max_rel_err_pct = max_rel_err_pct.max(rel_err_pct);
        percentile_rows.push(PercentileRow {
            p,
            exact_ns,
            histogram_ns,
            rel_err_pct,
        });
    }
    let err_bar_pct = 5.0;
    let design_bound_pct = 100.0 * Histogram::MAX_RELATIVE_ERROR;

    let pass = overhead_pct <= overhead_bar_pct && max_rel_err_pct <= err_bar_pct;

    println!(
        "{}",
        render_table(
            "Disabled-tracer overhead on the serving hot loop",
            &[
                "requests",
                "ns/site",
                "sites/req",
                "us/req",
                "overhead",
                "bar"
            ],
            &[vec![
                requests.to_string(),
                fmt3(per_site_ns),
                fmt3(sites_per_request),
                fmt3(request_ns / 1e3),
                format!("{overhead_pct:.4} %"),
                format!("<= {overhead_bar_pct:.1} %"),
            ]],
        )
    );
    println!(
        "{}",
        render_table(
            "Histogram percentiles vs exact nearest-rank (log-uniform ns)",
            &["p", "exact ns", "histogram ns", "rel err", "bar"],
            &percentile_rows
                .iter()
                .map(|r| {
                    vec![
                        format!("p{}", r.p),
                        r.exact_ns.to_string(),
                        r.histogram_ns.to_string(),
                        format!("{:.3} %", r.rel_err_pct),
                        format!("<= {err_bar_pct:.1} % (design {design_bound_pct:.2} %)"),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        requests,
        per_site_ns,
        sites_per_request,
        request_us: request_ns / 1e3,
        overhead_pct,
        overhead_bar_pct,
        histogram_values,
        percentiles: percentile_rows,
        max_rel_err_pct,
        err_bar_pct,
        design_bound_pct,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_telemetry.json", json) {
                eprintln!("failed to write BENCH_telemetry.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_telemetry.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
