//! `serve_throughput` — batched serving vs naive one-request-at-a-time.
//!
//! Serves SqueezeNet on the simulated target device through the full
//! `ios-serve` runtime twice:
//!
//! * **naive** — `max_batch = 1`: every request is dispatched alone, paying
//!   the batch-1 device latency (the classic unbatched server);
//! * **batched** — `max_batch = 32` with a deep request queue, so the
//!   dynamic batcher coalesces full batches and the schedule cache serves
//!   the batch-32-specialized schedule.
//!
//! Throughput is accounted in *device time* (requests per second of
//! simulated GPU time), the resource an inference service actually buys.
//! Batch-1 kernels under-utilize a large GPU (few thread blocks for 80
//! SMs), which is exactly the effect the paper's Figure 11 batch-size study
//! measures — batching restores utilization, and the acceptance bar for
//! this binary is ≥ 2× naive throughput at queue depth ≥ 32.
//!
//! Run with: `cargo run --release -p ios-bench --bin serve_throughput`
//! (`--device`, `--quick` and `--json PATH` as in every bench binary).
//!
//! Note the acceptance bar is a property of *large* devices: on a small
//! GPU like the Tesla K80 (13 SMs) batch-1 kernels already saturate the
//! device, batching buys only ~1.2×, and the gate honestly fails —
//! the same reason the paper's Figure 11 speedups shrink as batch grows.

use ios_backend::TensorData;
use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_serve::{MetricsSnapshot, ServeConfig, ServeEngine};
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Clone, Serialize)]
struct ServeRow {
    mode: String,
    requests: u64,
    mean_batch_size: f64,
    device_time_ms: f64,
    device_throughput_rps: f64,
    p99_latency_us: f64,
    cache_hit_rate: f64,
}

fn run_mode(
    mode: &str,
    network: &ios_ir::Network,
    opts: &BenchOptions,
    max_batch: usize,
    requests: usize,
) -> ServeRow {
    let config = ServeConfig::default()
        .with_device(opts.device)
        .with_max_batch(max_batch)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(50))
        .with_prewarm_batches(vec![1, max_batch]);
    let engine = ServeEngine::start_simulated(network.clone(), config);

    // Pre-build one input and clone it per request: submission must outpace
    // dispatch so the queue actually reaches depth ≥ max_batch.
    let input = TensorData::zeros(network.input_shape);
    let handles: Vec<_> = (0..requests)
        .map(|_| {
            engine
                .submit(input.clone())
                .expect("engine accepts requests")
        })
        .collect();
    let queue_depth_seen = engine.queue_depth();
    for handle in handles {
        let _ = handle.wait();
    }
    let metrics: MetricsSnapshot = engine.metrics();
    engine.shutdown();

    println!(
        "  {mode}: peak observed queue depth ≈ {queue_depth_seen}, \
         mean batch {:.2}, {} batches",
        metrics.mean_batch_size, metrics.batches
    );
    ServeRow {
        mode: mode.to_string(),
        requests: metrics.completed,
        mean_batch_size: metrics.mean_batch_size,
        device_time_ms: metrics.device_time_us / 1e3,
        device_throughput_rps: metrics.device_throughput_rps,
        p99_latency_us: metrics.p99_latency_us,
        cache_hit_rate: metrics.cache.hit_rate(),
    }
}

fn main() {
    let opts = BenchOptions::from_args();
    let requests = if opts.quick { 64 } else { 256 };
    let max_batch = 32;
    let network = ios_models::squeezenet(1);
    println!(
        "serve_throughput: {} on {:?}, {requests} requests, max batch {max_batch}",
        network.name, opts.device
    );

    let naive = run_mode("naive (batch 1)", &network, &opts, 1, requests);
    let batched = run_mode("batched (batch 32)", &network, &opts, max_batch, requests);
    let speedup = batched.device_throughput_rps / naive.device_throughput_rps;

    let rows: Vec<Vec<String>> = [&naive, &batched]
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.requests.to_string(),
                fmt3(r.mean_batch_size),
                fmt3(r.device_time_ms),
                fmt3(r.device_throughput_rps),
                fmt3(r.cache_hit_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Serving throughput (simulated device time)",
            &[
                "mode",
                "requests",
                "mean batch",
                "device ms",
                "req/s (device)",
                "cache hit rate"
            ],
            &rows,
        )
    );
    println!("batched vs naive speedup: {speedup:.2}x (acceptance bar: >= 2.00x)");
    if speedup >= 2.0 {
        println!("RESULT: PASS");
    } else {
        println!("RESULT: FAIL");
        std::process::exit(1);
    }

    #[derive(Serialize)]
    struct Report {
        rows: Vec<ServeRow>,
        speedup: f64,
    }
    maybe_write_json(
        &opts,
        &Report {
            rows: vec![naive, batched],
            speedup,
        },
    );
}
