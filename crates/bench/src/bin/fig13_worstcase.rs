//! Figure 13 / Appendix A: the worst-case graph family (d independent chains
//! of c operators) whose transition count reaches the complexity bound.

use ios_bench::{maybe_write_json, render_table, BenchOptions};
use ios_core::block_statistics;
use ios_models::worst_case_chains;

fn main() {
    let opts = BenchOptions::from_args();
    let configs: &[(usize, usize)] = if opts.quick {
        &[(2, 3), (3, 3)]
    } else {
        &[(2, 3), (3, 3), (3, 4), (4, 3), (4, 4)]
    };
    let mut rows = Vec::new();
    for &(d, c) in configs {
        let net = worst_case_chains(d, c, 1);
        let stats = block_statistics(&net.blocks[0].graph, usize::MAX);
        let bound = stats.transition_bound;
        rows.push(vec![
            format!("d={d} c={c}"),
            stats.n.to_string(),
            stats.width.to_string(),
            format!("{bound:.0}"),
            stats.transitions.to_string(),
            format!("{:.3}", stats.transitions as f64 / bound),
            format!("{:.2e}", stats.num_schedules),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Figure 13: worst-case chain family vs the complexity bound",
            &[
                "config",
                "n",
                "d",
                "bound C(c+2,2)^d",
                "#(S,S')",
                "ratio",
                "#schedules"
            ],
            &rows
        )
    );
    println!("the explored transition count tracks the theoretical bound (the gap is the one empty-ending per state)");
    maybe_write_json(&opts, &rows);
}
