//! `simd_gate` — CI acceptance gate for the explicit AVX2 f32 GEMM
//! microkernels behind the runtime SIMD dispatch (`ios_backend::simd`).
//!
//! On the serving-hot layer shapes of [`ios_bench::simd_bench_shapes`],
//! each run with a full bias + residual + ReLU epilogue:
//!
//! 1. **Bit-identity across ISAs** — before any timing, both f32 GEMM
//!    paths (unpacked [`conv2d_im2col_fused`] and packed
//!    [`conv2d_im2col_packed_fused`]) are run under *every* ISA this host
//!    supports via `with_forced_isa` and asserted bitwise equal to the
//!    scalar-forced reference. A single differing bit fails the gate.
//! 2. **Host-aware speedup bar** — on AVX2 hosts, the active kernels must
//!    beat the auto-vectorized SSE2-tier baseline by a geomean ≥ 1.4×;
//!    on hosts without AVX2 the explicit path does not exist, so the bar
//!    degrades to a ≥ 0.95× no-regression check against the same tier
//!    (the dispatch itself must not cost anything measurable).
//!
//! Speedups are medians of per-round paired ratios (baseline and wide
//! variants run adjacently within each round, so a noisy stretch on a
//! shared single-core CI host cancels out of the ratio, and the median
//! discards the rounds a burst split in half); the reported per-variant
//! times are best-of-N. A machine-readable report is always written to
//! `BENCH_simd.json` (and additionally to `--json PATH` when given).
//!
//! Run with: `cargo run --release -p ios-bench --bin simd_gate`
//! (`--quick` lowers the round count; the shapes stay full-size).

use ios_backend::gemm::{conv2d_im2col_fused, conv2d_im2col_packed_fused};
use ios_backend::ops_cpu::conv_weights;
use ios_backend::simd::{self, Isa};
use ios_backend::{ConvEpilogue, PackedFilter, ScratchPool, TensorData};
use ios_bench::{
    fmt3, geomean, maybe_write_json, median, render_table, simd_bench_shapes, BenchOptions,
};
use ios_ir::{Activation, Conv2dParams};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct SimdRow {
    shape: String,
    baseline_ms: f64,
    wide_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    active_isa: String,
    baseline_isa: String,
    rows: Vec<SimdRow>,
    geomean_speedup: f64,
    acceptance_bar: f64,
    bit_identical: bool,
    pass: bool,
}

/// One timed call of `f`, in milliseconds.
fn time_ms<O>(f: impl FnOnce() -> O) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let opts = BenchOptions::from_args();
    let iters = if opts.quick { 9 } else { 15 };
    let arena = ScratchPool::new();
    let cases = simd_bench_shapes();

    let active = simd::active_isa();
    // On AVX2 hosts the baseline is the previous production kernel: the
    // auto-vectorized tile at the SSE2 tier. Elsewhere there is no wider
    // kernel to compare, so the "baseline" is the active tier itself and
    // the bar is a pure no-regression check on the dispatch overhead.
    let baseline = if active == Isa::Avx2 {
        Isa::Sse2
    } else {
        active
    };
    let bar = if active == Isa::Avx2 { 1.4 } else { 0.95 };
    println!(
        "simd_gate: {} shapes, best of {iters} rounds each (active isa = {active}, \
         baseline isa = {baseline}, bar = {bar:.2}x, quick = {})",
        cases.len(),
        opts.quick
    );

    let supported: Vec<Isa> = [Isa::Scalar, Isa::Sse2, Isa::Avx2]
        .into_iter()
        .filter(|&i| i <= simd::detected_isa())
        .collect();

    let mut rows = Vec::new();
    for case in &cases {
        let input = TensorData::random(case.input, 7);
        let in_c_per_group = case.input.channels / case.params.groups;
        let weights = conv_weights(
            11,
            case.params.out_channels,
            in_c_per_group,
            case.params.kernel,
        );
        let k_len = in_c_per_group * case.params.kernel.0 * case.params.kernel.1;
        let packed = PackedFilter::pack(
            &weights,
            case.params.out_channels,
            case.params.groups,
            k_len,
        );

        // Full serving-hot epilogue so the vectorized store is on the
        // measured (and verified) path.
        let plain = Conv2dParams {
            activation: Activation::None,
            ..case.params
        };
        let bias = conv_weights(13, case.params.out_channels, 1, (1, 1));
        let out_shape = {
            let probe = conv2d_im2col_packed_fused(
                &input,
                &plain,
                &packed,
                &ConvEpilogue::default(),
                &arena,
            );
            let shape = probe.shape;
            arena.recycle_tensor(probe);
            shape
        };
        let residual = TensorData::random(out_shape, 17);
        let ep = ConvEpilogue {
            input_relu: false,
            bias: Some(&bias),
            residual: Some(&residual),
            relu: true,
        };

        let run_both = |isa: Isa| {
            simd::with_forced_isa(isa, || {
                (
                    conv2d_im2col_fused(&input, &plain, &weights, &ep, &arena),
                    conv2d_im2col_packed_fused(&input, &plain, &packed, &ep, &arena),
                )
            })
        };

        // The gate is only meaningful if every ISA computes the same bits.
        let (ref_unpacked, ref_packed) = run_both(Isa::Scalar);
        for &isa in &supported[1..] {
            let (unpacked, packed_out) = run_both(isa);
            assert_eq!(
                unpacked, ref_unpacked,
                "{}: unpacked f32 kernel must be bit-identical on {isa}",
                case.name
            );
            assert_eq!(
                packed_out, ref_packed,
                "{}: packed f32 kernel must be bit-identical on {isa}",
                case.name
            );
            arena.recycle_tensor(unpacked);
            arena.recycle_tensor(packed_out);
        }
        arena.recycle_tensor(ref_unpacked);
        arena.recycle_tensor(ref_packed);

        // Baseline and wide variants interleave within every round; the
        // speedup is the median of the per-round paired ratios and the
        // reported times are best-of-N (same harness as quant_gate, so
        // single-core CI hosts don't produce noisy verdicts).
        let run_packed = || {
            let out = conv2d_im2col_packed_fused(&input, &plain, &packed, &ep, &arena);
            arena.recycle_tensor(out);
        };
        let mut baseline_ms = f64::INFINITY;
        let mut wide_ms = f64::INFINITY;
        let mut ratios = Vec::with_capacity(iters);
        for _ in 0..iters {
            let b = simd::with_forced_isa(baseline, || time_ms(run_packed));
            let w = simd::with_forced_isa(active, || time_ms(run_packed));
            baseline_ms = baseline_ms.min(b);
            wide_ms = wide_ms.min(w);
            ratios.push(b / w);
        }
        let speedup = median(&mut ratios);
        rows.push(SimdRow {
            shape: case.name.to_string(),
            baseline_ms,
            wide_ms,
            speedup,
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                fmt3(r.baseline_ms),
                fmt3(r.wide_ms),
                fmt3(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("f32 GEMM microkernel: {baseline} baseline vs {active}"),
            &["shape", "baseline ms", "wide ms", "speedup"],
            &table_rows,
        )
    );

    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let mean = geomean(&speedups);
    let pass = mean >= bar;
    println!("geomean speedup: {mean:.3}x (acceptance bar: >= {bar:.2}x)");
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        active_isa: active.name().to_string(),
        baseline_isa: baseline.name().to_string(),
        rows,
        geomean_speedup: mean,
        acceptance_bar: bar,
        bit_identical: true,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_simd.json", json) {
                eprintln!("failed to write BENCH_simd.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_simd.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
