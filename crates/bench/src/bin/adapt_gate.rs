//! `adapt_gate` — CI acceptance gate for the runtime adaptation loop.
//!
//! Three phases, each on a fresh [`ios_serve::ServeEngine`] over the real
//! CPU reference backend:
//!
//! 1. **Baseline** — one closed-loop client measures the unloaded
//!    engine-side p99 latency (enqueue → completion, from the serving
//!    metrics histogram — free of client-thread wakeup jitter).
//! 2. **Overload with shedding** — several closed-loop clients race a
//!    capacity-1 admission queue with the shed controller armed. Offers
//!    are either answered or typed-shed (exact conservation), at least one
//!    offer must be shed, every accepted response is checked
//!    **bit-identical** against solo execution, and the accepted-request
//!    p99 must stay within the acceptance bar of the unloaded p99 —
//!    load shedding converts overload into rejections, not latency.
//! 3. **Mix-shift re-plan** — the traffic mix flips from singles to
//!    full bursts under an adaptation controller with a forced pipeline;
//!    the gate requires **≥ 1 observed re-plan** and zero bit-exactness
//!    violations across the mid-flight plan swap.
//!
//! The latency bar is host-aware, like `pipeline_gate`: on hosts with
//! ≥ 2 cores the accepted-p99 must stay ≤ 3× the unloaded p99; on a
//! single-core host client threads, worker and controller all contend for
//! one CPU, so the gate relaxes the ratio to 6× (shedding still has to
//! prove exact accounting and bit-identity there). The JSON report
//! (`BENCH_adapt.json`, plus `--json PATH`) records both bars, every
//! counter and which bar was enforced.
//!
//! Run with: `cargo run --release -p ios-bench --bin adapt_gate`
//! (`--quick` shortens the request streams for CI).

use ios_backend::{execute_network, TensorData};
use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
use ios_serve::{PipelineMode, Rejected, ServeConfig, ServeEngine, ServeError};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Report {
    host_parallelism: usize,
    baseline_requests: usize,
    baseline_p99_ms: f64,
    overload_clients: usize,
    overload_offered: u64,
    overload_accepted: u64,
    overload_shed: u64,
    overload_p99_ms: f64,
    /// Accepted-request p99 under overload over unloaded p99.
    p99_ratio: f64,
    acceptance_bar: f64,
    multi_core_bar: f64,
    replans_observed: u64,
    bitexact_checks: u64,
    bitexact_violations: u64,
    pass: bool,
}

/// The serving workload: a three-block branchy stack, heavy enough
/// (~16-channel 3×3 convs) that execution time dominates scheduling
/// jitter, small enough that the gate finishes in seconds.
fn gate_network() -> Network {
    let input = TensorShape::new(1, 16, 12, 12);
    let mut shape = input;
    let mut blocks = Vec::with_capacity(3);
    for i in 0..3 {
        let mut b = GraphBuilder::new(format!("adapt_gate_b{i}"), shape);
        let x = b.input(0);
        let a = b.conv2d(
            format!("b{i}_a3"),
            x,
            Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)),
        );
        let c = b.conv2d(
            format!("b{i}_c1"),
            x,
            Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)),
        );
        let cat = b.concat(format!("b{i}_cat"), &[a, c]);
        let block = Block::new(b.build(vec![cat]));
        shape = block.graph.output_shapes()[0];
        blocks.push(block);
    }
    Network::new("adapt_gate_net", input, blocks)
}

fn main() {
    let opts = BenchOptions::from_args();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let net = gate_network();
    let references: Vec<Vec<TensorData>> = (0..8)
        .map(|seed| {
            let input = TensorData::random(net.input_shape, seed);
            execute_network(&net, std::slice::from_ref(&input))
        })
        .collect();
    let baseline_requests = if opts.quick { 120 } else { 400 };
    let offers_per_client = if opts.quick { 40 } else { 120 };
    let overload_clients = 2usize;

    // ---- Phase 1: unloaded baseline --------------------------------
    let engine = ServeEngine::start(
        net.clone(),
        ServeConfig::default()
            .with_max_batch(1)
            .with_workers(1)
            .with_prewarm_batches(vec![1])
            .with_background_reoptimize(false),
    );
    for i in 0..baseline_requests {
        let seed = (i % 8) as u64;
        let response = engine
            .submit(TensorData::random(net.input_shape, seed))
            .expect("unloaded engine accepts")
            .wait_outcome()
            .expect("unloaded engine serves");
        assert_eq!(response.outputs.len(), references[seed as usize].len());
    }
    // Engine-side p99 (enqueue -> completion): the latency the serving
    // system is responsible for, free of client-thread wakeup jitter —
    // on a loaded single-core host the OS can park a *client* for
    // milliseconds after its answer is ready, and that is not the
    // engine's tail.
    let baseline_p99 = engine.metrics().p99_latency_us / 1e3;
    engine.shutdown();
    println!(
        "adapt_gate: {cores} cores, unloaded p99 {:.3} ms over {baseline_requests} requests \
         (quick = {})",
        baseline_p99, opts.quick
    );

    // ---- Phase 2: overload with shedding ---------------------------
    // Capacity 1 bounds how much backlog an accepted request can sit
    // behind; the shed controller is armed with a budget near the
    // unloaded p99 so sustained overload also flips shed mode.
    let mut config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_admission_capacity(1)
        .with_adapt_tick(Duration::from_millis(10))
        .with_shed_queue_wait_budget(Duration::from_secs_f64(baseline_p99 / 1e3));
    config.adapt.min_window_batches = 4;
    let engine = Arc::new(ServeEngine::start(net.clone(), config));
    let shed = Arc::new(AtomicU64::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let bitexact_checks = Arc::new(AtomicU64::new(0));
    let bitexact_violations = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for client in 0..overload_clients as u64 {
            let engine = Arc::clone(&engine);
            let net = &net;
            let references = &references;
            let shed = Arc::clone(&shed);
            let accepted = Arc::clone(&accepted);
            let checks = Arc::clone(&bitexact_checks);
            let violations = Arc::clone(&bitexact_violations);
            scope.spawn(move || {
                for round in 0..offers_per_client as u64 {
                    let seed = (client * 31 + round) % 8;
                    match engine.submit(TensorData::random(net.input_shape, seed)) {
                        Ok(handle) => {
                            let response =
                                handle.wait_outcome().expect("accepted requests complete");
                            accepted.fetch_add(1, Ordering::SeqCst);
                            checks.fetch_add(1, Ordering::SeqCst);
                            if response
                                .outputs
                                .iter()
                                .zip(&references[seed as usize])
                                .any(|(lease, reference)| lease != reference)
                            {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(ServeError::Rejected(Rejected::Shed)) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
            });
        }
    });
    let overload_shed = shed.load(Ordering::SeqCst);
    let metrics = engine.metrics();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients joined"));
    engine.shutdown();
    let overload_offered = (overload_clients * offers_per_client) as u64;
    let overload_accepted = accepted.load(Ordering::SeqCst);
    assert_eq!(
        overload_accepted + overload_shed,
        overload_offered,
        "every offer is either answered or typed-shed"
    );
    assert_eq!(
        metrics.shed, overload_shed,
        "the shed counter matches client truth"
    );
    // Same engine-side percentile as the baseline: only accepted
    // requests ever enter the latency histogram.
    let overload_p99 = metrics.p99_latency_us / 1e3;
    let p99_ratio = overload_p99 / baseline_p99;
    println!(
        "adapt_gate: overload accepted {overload_accepted}/{overload_offered} \
         (shed {overload_shed}), accepted p99 {overload_p99:.3} ms ({p99_ratio:.2}x unloaded)"
    );

    // ---- Phase 3: mix-shift re-plan, bit-identical across the swap --
    let mut config = ServeConfig::default()
        .with_max_batch(4)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1, 4])
        .with_background_reoptimize(false)
        .with_pipeline(PipelineMode::Forced(2))
        .with_adaptation(true)
        .with_adapt_tick(Duration::from_millis(5))
        // The re-plan channel is under test; keep timing noise in the
        // regret channel from evicting schedules mid-phase.
        .with_regret_threshold(1e9);
    config.adapt.min_window_batches = 4;
    let engine = ServeEngine::start(net.clone(), config);
    let check = |handles: Vec<ios_serve::ResponseHandle>, seeds: &[u64]| {
        for (handle, &seed) in handles.into_iter().zip(seeds) {
            let response = handle.wait_outcome().expect("no deadline in this phase");
            bitexact_checks.fetch_add(1, Ordering::SeqCst);
            if response
                .outputs
                .iter()
                .zip(&references[seed as usize])
                .any(|(lease, reference)| lease != reference)
            {
                bitexact_violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    };
    // Singles until the controller plans for batch 1, then bursts of 4
    // until it re-plans for the shifted mix.
    let mut phase_ok = true;
    let stop_at = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 1 && Instant::now() < stop_at {
        let handle = engine
            .submit(TensorData::random(net.input_shape, 1))
            .unwrap();
        check(vec![handle], &[1]);
    }
    let stop_at = Instant::now() + Duration::from_secs(60);
    while engine.metrics().replans < 2 && Instant::now() < stop_at {
        let seeds = [0u64, 1, 2, 3];
        let handles: Vec<_> = seeds
            .iter()
            .map(|&s| {
                engine
                    .submit(TensorData::random(net.input_shape, s))
                    .unwrap()
            })
            .collect();
        check(handles, &seeds);
    }
    let replans_observed = engine.metrics().replans;
    if replans_observed < 1 {
        println!("adapt_gate: controller never re-planned within the time budget");
        phase_ok = false;
    }
    engine.shutdown();

    // ---- Verdict ---------------------------------------------------
    let multi_core_bar = 3.0;
    let single_core_bar = 6.0;
    let bar = if cores >= 2 {
        multi_core_bar
    } else {
        println!(
            "single-core host: clients, worker and controller contend for one CPU, so the \
             latency ratio bar relaxes to {single_core_bar:.1}x (>= 2 cores enforces \
             {multi_core_bar:.1}x). Accounting, shedding and bit-identity are still enforced."
        );
        single_core_bar
    };
    let checks = bitexact_checks.load(Ordering::SeqCst);
    let violations = bitexact_violations.load(Ordering::SeqCst);
    let pass = phase_ok
        && p99_ratio <= bar
        && overload_shed > 0
        && violations == 0
        && replans_observed >= 1;

    println!(
        "{}",
        render_table(
            "Runtime adaptation gate: shed-mode tail latency and re-planning",
            &[
                "unloaded p99 ms",
                "overload p99 ms",
                "ratio",
                "bar",
                "shed",
                "replans",
                "bit-exact"
            ],
            &[vec![
                fmt3(baseline_p99),
                fmt3(overload_p99),
                fmt3(p99_ratio),
                format!("<= {bar:.1}x"),
                overload_shed.to_string(),
                replans_observed.to_string(),
                format!("{}/{} ok", checks - violations, checks),
            ]],
        )
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        host_parallelism: cores,
        baseline_requests,
        baseline_p99_ms: baseline_p99,
        overload_clients,
        overload_offered,
        overload_accepted,
        overload_shed,
        overload_p99_ms: overload_p99,
        p99_ratio,
        acceptance_bar: bar,
        multi_core_bar,
        replans_observed,
        bitexact_checks: checks,
        bitexact_violations: violations,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_adapt.json", json) {
                eprintln!("failed to write BENCH_adapt.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_adapt.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
