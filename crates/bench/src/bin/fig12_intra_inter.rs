//! Figure 12: intra-operator (TVM-AutoTune) vs inter-operator (IOS)
//! parallelism — normalized throughput per network plus total optimization
//! cost.

use ios_bench::{fmt3, geomean, maybe_write_json, render_table, BenchOptions};
use ios_core::{optimize_network, IosVariant, SimCostModel};
use ios_frameworks::{Framework, FrameworkKind, IosEngine};
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let networks = opts.benchmark_networks();
    let mut rows = Vec::new();
    let mut tvm_norm = Vec::new();
    let mut ios_norm = Vec::new();
    let mut total_measurements = 0u64;

    for net in &networks {
        let batch = net.input_shape.batch;
        let tvm = Framework::new(FrameworkKind::TvmAutoTune, opts.device).measure(net);
        let cost = SimCostModel::new(Simulator::new(opts.device));
        let report = optimize_network(net, &cost, &opts.scheduler_config(IosVariant::Both));
        total_measurements += report.measurements;
        let ios_throughput = report.schedule.throughput(batch);
        let best = tvm.throughput.max(ios_throughput);
        tvm_norm.push(tvm.throughput / best);
        ios_norm.push(ios_throughput / best);
        rows.push(vec![
            net.name.clone(),
            fmt3(tvm.latency_us / 1e3),
            fmt3(report.schedule.latency_ms()),
            fmt3(tvm.throughput / best),
            fmt3(ios_throughput / best),
        ]);
    }
    rows.push(vec![
        "GeoMean".to_string(),
        String::new(),
        String::new(),
        fmt3(geomean(&tvm_norm)),
        fmt3(geomean(&ios_norm)),
    ]);
    println!(
        "{}",
        render_table(
            "Figure 12: TVM-AutoTune vs IOS (normalized throughput)",
            &[
                "network",
                "TVM lat (ms)",
                "IOS lat (ms)",
                "TVM norm",
                "IOS norm"
            ],
            &rows
        )
    );
    println!(
        "optimization cost: TVM-AutoTune ≈ {:.0} GPU hours; IOS ≈ {:.0} GPU hours ({} stage profilings in this run)",
        FrameworkKind::TvmAutoTune.optimization_cost_gpu_hours(),
        IosEngine::optimization_cost_gpu_hours(),
        total_measurements
    );
    println!("paper shape: IOS wins on Inception V3 / SqueezeNet, TVM wins on RandWire / NasNet, and IOS tunes two orders of magnitude faster");
    maybe_write_json(&opts, &rows);
}
