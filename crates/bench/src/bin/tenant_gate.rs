//! `tenant_gate` — CI acceptance gate for multi-tenant admission.
//!
//! Two phases, each on a fresh [`ios_serve::ServeEngine`] over the real
//! CPU reference backend:
//!
//! 1. **Weighted fairness** — two *equal-weight* tenants offer load at a
//!    3:1 ratio against a saturated single-worker server. Weighted-fair
//!    dequeue must split completed throughput evenly regardless of the
//!    offered skew: the gate requires the completed-count ratio to stay
//!    within 1.25× of parity while both lanes are backlogged.
//! 2. **Quota enforcement** — a token-bucket-limited tenant is offered
//!    load well above its refill rate. Every over-quota offer must come
//!    back as the typed [`Rejected::Shed`] (exact conservation:
//!    `accepted + shed == offered`), the per-tenant metrics must agree
//!    with client-side truth, and the accepted count must stay within
//!    `burst + rate · elapsed + slack` — the bucket cannot leak.
//!
//! The gate also round-trips the engine's Prometheus exposition (now
//! carrying `ios_tenant_*{tenant="…"}` labelled series) through the
//! telemetry validator. The JSON report (`BENCH_tenant.json`, plus
//! `--json PATH`) records every counter and bar.
//!
//! Run with: `cargo run --release -p ios-bench --bin tenant_gate`
//! (`--quick` shortens both phases for CI).

use ios_backend::TensorData;
use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
use ios_serve::{Rejected, ServeConfig, ServeEngine, ServeError, TenantConfig};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Report {
    host_parallelism: usize,
    quick: bool,
    fairness_target_completed: u64,
    burst_completed: u64,
    trickle_completed: u64,
    /// max(burst, trickle) / min(burst, trickle) completed counts.
    fairness_ratio: f64,
    fairness_bar: f64,
    quota_rate_per_sec: f64,
    quota_burst: f64,
    quota_offered: u64,
    quota_accepted: u64,
    quota_shed: u64,
    quota_elapsed_s: f64,
    /// `burst + rate · elapsed + slack`: the most the bucket may admit.
    quota_accept_bound: f64,
    prometheus_series: usize,
    pass: bool,
}

/// The serving workload shared with `adapt_gate`: a three-block branchy
/// stack heavy enough that execution dominates scheduling jitter, small
/// enough that the gate finishes in seconds.
fn gate_network() -> Network {
    let input = TensorShape::new(1, 16, 12, 12);
    let mut shape = input;
    let mut blocks = Vec::with_capacity(3);
    for i in 0..3 {
        let mut b = GraphBuilder::new(format!("tenant_gate_b{i}"), shape);
        let x = b.input(0);
        let a = b.conv2d(
            format!("b{i}_a3"),
            x,
            Conv2dParams::relu(16, (3, 3), (1, 1), (1, 1)),
        );
        let c = b.conv2d(
            format!("b{i}_c1"),
            x,
            Conv2dParams::relu(16, (1, 1), (1, 1), (0, 0)),
        );
        let cat = b.concat(format!("b{i}_cat"), &[a, c]);
        let block = Block::new(b.build(vec![cat]));
        shape = block.graph.output_shapes()[0];
        blocks.push(block);
    }
    Network::new("tenant_gate_net", input, blocks)
}

fn tenant_completed(engine: &ServeEngine, tenant: &str) -> u64 {
    engine
        .metrics()
        .tenants
        .iter()
        .find(|t| t.tenant == tenant)
        .map_or(0, |t| t.completed)
}

fn main() {
    let opts = BenchOptions::from_args();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let net = gate_network();
    let fairness_target = if opts.quick { 240u64 } else { 600 };
    let quota_offers = if opts.quick { 60u64 } else { 120 };

    // ---- Phase 1: equal weights split a 3:1 offered load evenly ------
    // One worker, batch 1: every dispatch is a pure weighted-fair choice.
    // The burst tenant keeps 9 requests outstanding, the trickle tenant 3
    // (the 3:1 offered skew); equal weights mean the dequeue must ignore
    // that skew as long as both lanes are backlogged.
    let config = ServeConfig::default()
        .with_max_batch(1)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_tenant("burst", TenantConfig::default())
        .with_tenant("trickle", TenantConfig::default());
    let engine = Arc::new(ServeEngine::start(net.clone(), config));
    let stop = Arc::new(AtomicBool::new(false));
    let feeders: Vec<_> = [("burst", 9usize), ("trickle", 3usize)]
        .into_iter()
        .map(|(tenant, depth)| {
            let engine = Arc::clone(&engine);
            let net = net.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut outstanding = Vec::new();
                let mut seed = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    while outstanding.len() < depth {
                        seed += 1;
                        let handle = engine
                            .submit_for_tenant(tenant, TensorData::random(net.input_shape, seed))
                            .expect("fairness phase runs unmetered");
                        outstanding.push(handle);
                    }
                    outstanding = outstanding
                        .into_iter()
                        .filter_map(|h| h.try_wait().err())
                        .collect();
                    std::thread::sleep(Duration::from_micros(300));
                }
                for handle in outstanding {
                    let _ = handle.wait_outcome();
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    while engine.metrics().completed < fairness_target && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let burst_completed = tenant_completed(&engine, "burst");
    let trickle_completed = tenant_completed(&engine, "trickle");
    stop.store(true, Ordering::SeqCst);
    for feeder in feeders {
        feeder.join().expect("feeder thread");
    }
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("feeders joined"))
        .shutdown();
    let fairness_bar = 1.25;
    let fairness_ratio = if burst_completed.min(trickle_completed) == 0 {
        f64::INFINITY
    } else {
        burst_completed.max(trickle_completed) as f64
            / burst_completed.min(trickle_completed) as f64
    };
    println!(
        "tenant_gate: {cores} cores, fairness burst {burst_completed} vs trickle \
         {trickle_completed} completed ({fairness_ratio:.3}x, bar {fairness_bar:.2}x, \
         quick = {})",
        opts.quick
    );

    // ---- Phase 2: the token bucket cannot leak -----------------------
    let rate = 20.0;
    let burst = 5.0;
    let config = ServeConfig::default()
        .with_max_batch(8)
        .with_workers(1)
        .with_max_wait(Duration::from_millis(1))
        .with_prewarm_batches(vec![1])
        .with_background_reoptimize(false)
        .with_tenant("metered", TenantConfig::default().with_rate(rate, burst))
        .with_tenant("bystander", TenantConfig::default());
    let engine = ServeEngine::start(net.clone(), config);
    let mut accepted_handles = Vec::new();
    let mut quota_shed = 0u64;
    let quota_started = Instant::now();
    for i in 0..quota_offers {
        match engine.submit_for_tenant("metered", TensorData::random(net.input_shape, i)) {
            Ok(handle) => accepted_handles.push(handle),
            Err(ServeError::Rejected(Rejected::Shed)) => quota_shed += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let quota_elapsed = quota_started.elapsed().as_secs_f64();
    let quota_accepted = accepted_handles.len() as u64;
    for handle in accepted_handles {
        handle
            .wait_outcome()
            .expect("accepted metered requests complete");
    }
    // A bystander rides along untouched by the neighbor's exhausted bucket.
    engine
        .submit_for_tenant("bystander", TensorData::random(net.input_shape, 0))
        .expect("an unmetered tenant is never rate-limited")
        .wait_outcome()
        .expect("bystander completes");
    let snapshot = engine.metrics();
    let metered = snapshot
        .tenants
        .iter()
        .find(|t| t.tenant == "metered")
        .expect("metered tenant reported");
    let quota_accept_bound = burst + rate * quota_elapsed + 3.0;
    let text = engine.prometheus_text();
    let prometheus_series = match ios_telemetry::prometheus::validate(&text) {
        Ok(series) => series,
        Err(e) => {
            println!("tenant_gate: prometheus exposition failed validation: {e}");
            0
        }
    };
    engine.shutdown();
    println!(
        "tenant_gate: quota accepted {quota_accepted}/{quota_offers} (shed {quota_shed}) over \
         {quota_elapsed:.2} s — bound {quota_accept_bound:.1} at rate {rate}/s, burst {burst}"
    );

    // ---- Verdict -----------------------------------------------------
    let pass = fairness_ratio <= fairness_bar
        && quota_shed > 0
        && quota_accepted + quota_shed == quota_offers
        && (quota_accepted as f64) <= quota_accept_bound
        && quota_accepted >= burst as u64
        && metered.completed == quota_accepted
        && metered.shed == quota_shed
        && prometheus_series > 0
        && text.contains(r#"ios_tenant_requests_shed_total{tenant="metered"}"#);

    println!(
        "{}",
        render_table(
            "Multi-tenant admission gate: weighted fairness and quota enforcement",
            &[
                "burst done",
                "trickle done",
                "ratio",
                "bar",
                "quota accepted",
                "quota shed",
                "accept bound",
            ],
            &[vec![
                burst_completed.to_string(),
                trickle_completed.to_string(),
                fmt3(fairness_ratio),
                format!("<= {fairness_bar:.2}x"),
                quota_accepted.to_string(),
                quota_shed.to_string(),
                fmt3(quota_accept_bound),
            ]],
        )
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        host_parallelism: cores,
        quick: opts.quick,
        fairness_target_completed: fairness_target,
        burst_completed,
        trickle_completed,
        fairness_ratio,
        fairness_bar,
        quota_rate_per_sec: rate,
        quota_burst: burst,
        quota_offered: quota_offers,
        quota_accepted,
        quota_shed,
        quota_elapsed_s: quota_elapsed,
        quota_accept_bound,
        prometheus_series,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_tenant.json", json) {
                eprintln!("failed to write BENCH_tenant.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_tenant.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
