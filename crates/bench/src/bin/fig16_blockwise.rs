//! Figure 16 (Appendix C): per-block speedup of IOS over the sequential
//! schedule on Inception V3.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{optimize_network, sequential_network_schedule, IosVariant, SimCostModel};
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let net = ios_models::inception_v3(opts.batch);
    let cost = SimCostModel::new(Simulator::new(opts.device));
    let seq = sequential_network_schedule(&net, &cost);
    let ios = optimize_network(&net, &cost, &opts.scheduler_config(IosVariant::Both));

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (i, (block_seq, ios_lat)) in seq
        .block_schedules
        .iter()
        .zip(&ios.block_latencies_us)
        .enumerate()
    {
        let seq_lat = block_seq.total_measured_latency_us();
        let speedup = seq_lat / ios_lat;
        speedups.push(speedup);
        rows.push(vec![
            format!("block {}", i + 1),
            net.blocks[i].graph.name().to_string(),
            fmt3(seq_lat / 1e3),
            fmt3(ios_lat / 1e3),
            format!("{speedup:.2}x"),
        ]);
    }
    rows.push(vec![
        "end-to-end".to_string(),
        String::new(),
        fmt3(seq.latency_ms()),
        fmt3(ios.schedule.latency_ms()),
        format!("{:.2}x", seq.latency_us / ios.schedule.latency_us),
    ]);
    println!(
        "{}",
        render_table(
            "Figure 16: per-block IOS speedup over the sequential schedule (Inception V3)",
            &["block", "name", "sequential (ms)", "IOS (ms)", "speedup"],
            &rows
        )
    );
    println!("paper shape: every block speeds up, later (wider) blocks more — up to 2.3x per block, 1.6x end to end");
    maybe_write_json(&opts, &speedups);
}
