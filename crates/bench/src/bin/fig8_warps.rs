//! Figure 8: active warps over time for the sequential schedule vs. the IOS
//! schedule of the Figure 2 block, sampled from the simulated timeline.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{
    optimize_network, sequential_network_schedule, IosVariant, NetworkSchedule, SimCostModel,
};
use ios_ir::Network;
use ios_sim::profiler::{concat_timelines, ActiveWarpProfile};
use ios_sim::Simulator;

fn timeline_of(
    net: &Network,
    schedule: &NetworkSchedule,
    sim: &Simulator,
) -> (f64, Vec<ios_sim::KernelEvent>) {
    let mut stages = Vec::new();
    for (block, block_schedule) in net.blocks.iter().zip(&schedule.block_schedules) {
        for stage in &block_schedule.stages {
            let m = sim.measure_stage(&block.graph, &stage.groups);
            stages.push((m.latency_us, m.events));
        }
    }
    concat_timelines(&stages)
}

fn main() {
    let opts = BenchOptions::from_args();
    let net = ios_models::figure2_block(opts.batch);
    let sim = Simulator::new(opts.device);
    let cost = SimCostModel::new(Simulator::new(opts.device));

    let seq = sequential_network_schedule(&net, &cost);
    let ios = optimize_network(&net, &cost, &opts.scheduler_config(IosVariant::Parallel)).schedule;

    let device = opts.device.spec();
    let interval = 2.1; // µs, mirroring the paper's 2.1 ms CUPTI sampling at scale
    let (seq_dur, seq_events) = timeline_of(&net, &seq, &sim);
    let (ios_dur, ios_events) = timeline_of(&net, &ios, &sim);
    let seq_profile = ActiveWarpProfile::from_events(&seq_events, seq_dur, interval, &device);
    let ios_profile = ActiveWarpProfile::from_events(&ios_events, ios_dur, interval, &device);

    let rows = vec![
        vec![
            "Sequential".to_string(),
            fmt3(seq_dur / 1e3),
            fmt3(seq_profile.average_active_warps()),
            seq_profile.peak_active_warps().to_string(),
        ],
        vec![
            "IOS".to_string(),
            fmt3(ios_dur / 1e3),
            fmt3(ios_profile.average_active_warps()),
            ios_profile.peak_active_warps().to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Figure 8: active warps (simulated CUPTI sampling)",
            &[
                "schedule",
                "duration (ms)",
                "avg active warps",
                "peak active warps"
            ],
            &rows
        )
    );
    let ratio = ios_profile.average_active_warps() / seq_profile.average_active_warps().max(1e-9);
    println!("IOS keeps {ratio:.2}x more warps active on average (paper: 1.58x)");

    println!("\nsampled series (time µs, sequential warps, IOS warps):");
    let n = seq_profile
        .samples
        .len()
        .max(ios_profile.samples.len())
        .min(48);
    for i in 0..n {
        let s = seq_profile.samples.get(i).map_or(0, |s| s.active_warps);
        let o = ios_profile.samples.get(i).map_or(0, |s| s.active_warps);
        println!("{:8.1} {:8} {:8}", i as f64 * interval, s, o);
    }
    maybe_write_json(&opts, &(seq_profile, ios_profile));
}
