//! `sched_gate` — CI acceptance gate for profile-guided scheduling.
//!
//! Closes the paper's optimize → profile → execute loop and measures what
//! it buys: each benchmark block (Inception-V3 mixed blocks, RandWire
//! random stages) is optimized by the IOS dynamic program against a
//! [`ProfiledCostModel`] whose stage latencies are **measured on the CPU
//! execution backend** (`CpuStageProfiler`, warmup + median-of-N repeats
//! per distinct stage), and the winning schedule is then executed on that
//! same backend against two references:
//!
//! * **sequential execution** (plain topological order) — the paper's
//!   baseline; the headline gate number;
//! * the **sim-guided schedule** (optimized against the analytical V100
//!   simulator, executed on the CPU) — quantifying what profiling on the
//!   *actual* substrate is worth over optimizing for the wrong device.
//!
//! The profiled schedule must also preserve semantics (checked against
//! sequential execution before timing, ≤ 1e-3 for padded-kernel merges).
//!
//! The acceptance bar is host-aware, because inter-operator concurrency is
//! a hardware property: on a host with ≥ 2 cores the profiled IOS schedule
//! must beat sequential execution by a **geomean ≥ 1.10×**; on a
//! single-core host no schedule can beat sequential wall-clock through
//! concurrency, the profiled model's job is to *recognize* that and
//! converge to (near-)sequential schedules, and the gate enforces
//! no-regression (geomean ≥ 0.95×) instead. The JSON report records which
//! bar was enforced.
//!
//! A machine-readable report is always written to `BENCH_sched.json` (and
//! additionally to `--json PATH` when given): per-block timings, the
//! profiled-vs-simulated stage decompositions and whether they diverged —
//! the README's "schedule divergence" table is generated from this.
//!
//! Run with: `cargo run --release -p ios-bench --bin sched_gate`
//! (`--quick` profiles fewer blocks with fewer repeats for CI's PR lane).

use ios_backend::{
    execute_graph_pooled, execute_schedule_pooled, max_abs_difference, BlockWeights,
    CpuStageProfiler, ScratchPool, TensorData,
};
use ios_bench::{fmt3, geomean, maybe_write_json, render_table, BenchOptions};
use ios_core::{
    schedule_graph, ParallelizationStrategy, ProfiledCostModel, Schedule, SchedulerConfig,
    SimCostModel,
};
use ios_ir::Graph;
use ios_models::RandWireConfig;
use ios_sim::Simulator;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct SchedRow {
    block: String,
    ops: usize,
    /// Stage latency measurements the profiled optimization performed.
    profiled_stages: u64,
    seq_ms: f64,
    ios_ms: f64,
    sim_guided_ms: f64,
    speedup_vs_seq: f64,
    speedup_vs_sim_guided: f64,
    /// `stages(strategy summary)` of the CPU-profiled schedule.
    cpu_decomposition: String,
    /// `stages(strategy summary)` of the sim-optimized schedule.
    sim_decomposition: String,
    /// Whether the two cost models picked different stage decompositions.
    diverged: bool,
}

#[derive(Serialize)]
struct Report {
    rows: Vec<SchedRow>,
    geomean_speedup_vs_seq: f64,
    geomean_speedup_vs_sim_guided: f64,
    host_parallelism: usize,
    acceptance_bar: f64,
    multi_core_bar: f64,
    diverged_blocks: usize,
    pass: bool,
}

/// Best (minimum) wall time of `iters` runs of `f`, in milliseconds.
fn best_ms<O>(iters: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A compact human-readable summary of a schedule's stage decomposition,
/// e.g. `"6 stages [c2 c1 m2 c1 c1 c1]"` (`c` = concurrent groups,
/// `m` = merged operators).
fn decomposition(schedule: &Schedule) -> String {
    let stages: Vec<String> = schedule
        .stages
        .iter()
        .map(|s| match s.strategy {
            ParallelizationStrategy::ConcurrentExecution => format!("c{}", s.num_groups()),
            ParallelizationStrategy::OperatorMerge => format!("m{}", s.len()),
        })
        .collect();
    format!("{} stages [{}]", schedule.num_stages(), stages.join(" "))
}

/// The benchmark blocks: Inception-V3 mixed blocks (wide, mergeable 1×1
/// branches) and RandWire random stages (many independent sep-conv nodes).
fn gate_blocks(quick: bool) -> Vec<(String, Graph)> {
    let inception = ios_models::inception_v3(1);
    let randwire = ios_models::randwire::randwire(
        1,
        RandWireConfig {
            nodes_per_stage: 12,
            ..RandWireConfig::default()
        },
    );
    let mut picks: Vec<(String, Graph)> = Vec::new();
    let inception_blocks: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 9] };
    for &i in inception_blocks {
        picks.push((
            format!("inception_v3/b{i}"),
            inception.blocks[i].graph.clone(),
        ));
    }
    let randwire_blocks: &[usize] = if quick { &[1] } else { &[1, 2] };
    for &i in randwire_blocks {
        picks.push((format!("randwire/b{i}"), randwire.blocks[i].graph.clone()));
    }
    picks
}

fn main() {
    let opts = BenchOptions::from_args();
    let iters = if opts.quick { 5 } else { 9 };
    // Profiling policy: the gate's DP measures hundreds of distinct stages
    // per block, so quick mode trades repeats for wall time.
    let (warmup, repeats) = if opts.quick { (1, 2) } else { (1, 3) };
    let config = if opts.quick {
        SchedulerConfig::paper_default().with_pruning(2, 4)
    } else {
        SchedulerConfig::paper_default().with_pruning(3, 6)
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let cases = gate_blocks(opts.quick);
    println!(
        "sched_gate: {} blocks, profile policy {warmup}+{repeats} (median), best of {iters} \
         timed runs, host parallelism {host_parallelism} (quick = {})",
        cases.len(),
        opts.quick
    );

    let mut rows = Vec::new();
    for (name, graph) in &cases {
        // Optimize against stage latencies measured on the CPU backend…
        let profiled = ProfiledCostModel::with_policy(CpuStageProfiler::new(), warmup, repeats);
        let started = Instant::now();
        let ios = schedule_graph(graph, &profiled, &config);
        let optimize_s = started.elapsed().as_secs_f64();
        // …and against the analytical V100 simulator for comparison.
        let sim_cost = SimCostModel::new(Simulator::new(opts.device));
        let sim = schedule_graph(graph, &sim_cost, &config);

        let weights = BlockWeights::precompute(graph);
        let pool = ScratchPool::new();
        let inputs: Vec<TensorData> = graph
            .input_shapes()
            .iter()
            .enumerate()
            .map(|(i, s)| TensorData::random(*s, 77 + i as u64))
            .collect();

        // The gate is only meaningful if the profiled schedule is correct.
        let reference = execute_graph_pooled(graph, &inputs, Some(&weights), &pool);
        let scheduled =
            execute_schedule_pooled(graph, &ios.schedule, &inputs, Some(&weights), &pool);
        let diff = max_abs_difference(&reference, &scheduled);
        assert!(
            diff <= 1e-3,
            "{name}: profiled schedule must preserve semantics (diff = {diff})"
        );
        for t in reference.into_iter().chain(scheduled) {
            pool.recycle_tensor(t);
        }
        // Warm the sim-guided path's merged-weight cache too.
        for t in execute_schedule_pooled(graph, &sim.schedule, &inputs, Some(&weights), &pool) {
            pool.recycle_tensor(t);
        }

        let seq_ms = best_ms(iters, || {
            for t in execute_graph_pooled(graph, &inputs, Some(&weights), &pool) {
                pool.recycle_tensor(t);
            }
        });
        let ios_ms = best_ms(iters, || {
            for t in execute_schedule_pooled(graph, &ios.schedule, &inputs, Some(&weights), &pool) {
                pool.recycle_tensor(t);
            }
        });
        let sim_guided_ms = best_ms(iters, || {
            for t in execute_schedule_pooled(graph, &sim.schedule, &inputs, Some(&weights), &pool) {
                pool.recycle_tensor(t);
            }
        });

        let cpu_decomposition = decomposition(&ios.schedule);
        let sim_decomposition = decomposition(&sim.schedule);
        let diverged = ios
            .schedule
            .stages
            .iter()
            .map(|s| (s.ops, s.strategy))
            .ne(sim.schedule.stages.iter().map(|s| (s.ops, s.strategy)));
        println!(
            "  {name}: optimized in {optimize_s:.1}s ({} stage profiles)",
            ios.measurements
        );
        rows.push(SchedRow {
            block: name.clone(),
            ops: graph.len(),
            profiled_stages: ios.measurements,
            seq_ms,
            ios_ms,
            sim_guided_ms,
            speedup_vs_seq: seq_ms / ios_ms,
            speedup_vs_sim_guided: sim_guided_ms / ios_ms,
            cpu_decomposition,
            sim_decomposition,
            diverged,
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.block.clone(),
                fmt3(r.seq_ms),
                fmt3(r.ios_ms),
                fmt3(r.sim_guided_ms),
                fmt3(r.speedup_vs_seq),
                fmt3(r.speedup_vs_sim_guided),
                r.cpu_decomposition.clone(),
                r.sim_decomposition.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Profile-guided scheduling: IOS-DP on measured CPU stage latencies",
            &[
                "block",
                "seq ms",
                "ios ms",
                "sim-guided ms",
                "vs seq",
                "vs sim-guided",
                "cpu schedule",
                "sim schedule",
            ],
            &table_rows,
        )
    );

    let vs_seq: Vec<f64> = rows.iter().map(|r| r.speedup_vs_seq).collect();
    let vs_sim: Vec<f64> = rows.iter().map(|r| r.speedup_vs_sim_guided).collect();
    let mean_seq = geomean(&vs_seq);
    let mean_sim = geomean(&vs_sim);
    let diverged_blocks = rows.iter().filter(|r| r.diverged).count();

    let multi_core_bar = 1.10;
    let single_core_bar = 0.95;
    let bar = if host_parallelism >= 2 {
        multi_core_bar
    } else {
        println!(
            "single-core host: inter-operator concurrency cannot beat sequential wall-clock \
             here; the profiled model's job is to converge to (near-)sequential schedules, so \
             the gate enforces no-regression (>= {single_core_bar:.2}x). On hosts with >= 2 \
             cores (CI) the bar is >= {multi_core_bar:.2}x."
        );
        single_core_bar
    };
    let pass = mean_seq >= bar;
    println!(
        "geomean speedup vs sequential: {mean_seq:.3}x (enforced bar: >= {bar:.2}x); \
         vs sim-guided schedules: {mean_sim:.3}x; {diverged_blocks}/{} blocks diverged",
        rows.len()
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        rows,
        geomean_speedup_vs_seq: mean_seq,
        geomean_speedup_vs_sim_guided: mean_sim,
        host_parallelism,
        acceptance_bar: bar,
        multi_core_bar,
        diverged_blocks,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_sched.json", json) {
                eprintln!("failed to write BENCH_sched.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_sched.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
