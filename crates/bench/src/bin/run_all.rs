//! Runs every table/figure reproducer in sequence (forwarding the common
//! flags), so `cargo run --release -p ios-bench --bin run_all -- --quick`
//! regenerates the whole evaluation.

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig1_trends",
    "fig2_motivation",
    "table1_complexity",
    "table2_networks",
    "fig6_schedules",
    "fig7_frameworks",
    "fig8_warps",
    "fig9_pruning",
    "table3_specialization",
    "fig10_specialized_schedule",
    "fig11_batchsize",
    "fig12_intra_inter",
    "fig13_worstcase",
    "fig16_blockwise",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("current executable directory");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n############ {bin} ############");
        let path = exe_dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).args(&forwarded).status()
        } else {
            // Fall back to cargo when the sibling binary has not been built.
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "ios-bench",
                    "--bin",
                    bin,
                    "--",
                ])
                .args(&forwarded)
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
