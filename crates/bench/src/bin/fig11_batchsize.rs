//! Figure 11: throughput of Sequential, TVM-cuDNN, TASO, TensorRT and IOS on
//! Inception V3 across batch sizes 1, 16, 32, 64 and 128.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions, MeasurementRow};
use ios_core::{optimize_network, sequential_network_schedule, IosVariant, SimCostModel};
use ios_frameworks::{Framework, FrameworkKind};
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let batches: &[usize] = if opts.quick {
        &[1, 32]
    } else {
        &[1, 16, 32, 64, 128]
    };
    let base = if opts.quick {
        ios_models::figure2_block(1)
    } else {
        ios_models::inception_v3(1)
    };

    let mut rows = Vec::new();
    let mut all = Vec::new();
    for &batch in batches {
        let net = base.with_batch_size(batch);
        let cost = SimCostModel::new(Simulator::new(opts.device));

        let mut record = |label: &str, latency_us: f64| {
            let throughput = batch as f64 / (latency_us / 1e6);
            rows.push(vec![
                batch.to_string(),
                label.to_string(),
                fmt3(latency_us / 1e3),
                fmt3(throughput),
            ]);
            all.push(MeasurementRow {
                label: label.to_string(),
                network: format!("{}@{batch}", net.name),
                latency_ms: latency_us / 1e3,
                throughput,
            });
        };

        record(
            "Sequential",
            sequential_network_schedule(&net, &cost).latency_us,
        );
        for kind in [
            FrameworkKind::TvmCuDnn,
            FrameworkKind::Taso,
            FrameworkKind::TensorRt,
        ] {
            let result = Framework::new(kind, opts.device).measure(&net);
            record(&kind.to_string(), result.latency_us);
        }
        let ios = optimize_network(&net, &cost, &opts.scheduler_config(IosVariant::Both)).schedule;
        record("IOS", ios.latency_us);
    }
    println!(
        "{}",
        render_table(
            "Figure 11: throughput vs batch size (Inception V3)",
            &["batch", "method", "latency (ms)", "images/s"],
            &rows
        )
    );
    println!("paper shape: throughput grows with batch size and saturates around 128; IOS stays on top for every batch size");
    maybe_write_json(&opts, &all);
}
