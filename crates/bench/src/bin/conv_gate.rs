//! `conv_gate` — CI acceptance gate for the CPU convolution engine.
//!
//! Times the im2col + register-blocked GEMM convolution ([`conv2d_pooled`])
//! against the naive 7-deep reference loop ([`conv2d_naive`]) on the
//! Inception-/SqueezeNet-shaped layers of
//! [`ios_bench::conv_bench_shapes`], after first asserting the two paths
//! are **bit-identical** on every shape. The acceptance bar is a geometric
//! mean speedup ≥ 3×.
//!
//! A machine-readable report is always written to `BENCH_conv.json` (and
//! additionally to `--json PATH` when given) so the kernel's performance
//! trajectory is tracked across PRs.
//!
//! Run with: `cargo run --release -p ios-bench --bin conv_gate`
//! (`--quick` halves the channel counts and the iteration count).

use ios_backend::ops_cpu::{conv2d_naive, conv2d_pooled, conv_weights};
use ios_backend::{ScratchPool, TensorData};
use ios_bench::{conv_bench_shapes, fmt3, geomean, maybe_write_json, render_table, BenchOptions};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct ConvRow {
    shape: String,
    macs: u64,
    naive_ms: f64,
    gemm_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    rows: Vec<ConvRow>,
    geomean_speedup: f64,
    acceptance_bar: f64,
    pass: bool,
}

/// Best (minimum) wall time of `iters` runs of `f`, in milliseconds.
fn best_ms<O>(iters: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let opts = BenchOptions::from_args();
    let iters = if opts.quick { 3 } else { 5 };
    let arena = ScratchPool::new();
    let cases = conv_bench_shapes(opts.quick);
    println!(
        "conv_gate: {} shapes, best of {iters} runs each (quick = {})",
        cases.len(),
        opts.quick
    );

    let mut rows = Vec::new();
    for case in &cases {
        let input = TensorData::random(case.input, 7);
        let in_c_per_group = case.input.channels / case.params.groups;
        let weights = conv_weights(
            11,
            case.params.out_channels,
            in_c_per_group,
            case.params.kernel,
        );

        // The gate is only meaningful if the fast path is exact.
        let fast = conv2d_pooled(&input, &case.params, &weights, &arena);
        let reference = conv2d_naive(&input, &case.params, &weights);
        assert_eq!(
            fast, reference,
            "{}: im2col/GEMM output must be bit-identical to the naive kernel",
            case.name
        );
        let (oh, ow) =
            case.input
                .conv_output_hw(case.params.kernel, case.params.stride, case.params.padding);
        let macs = (case.params.out_channels
            * in_c_per_group
            * case.params.kernel.0
            * case.params.kernel.1
            * oh
            * ow
            * case.input.batch) as u64;
        arena.recycle_tensor(fast);

        let naive_ms = best_ms(iters, || conv2d_naive(&input, &case.params, &weights));
        let gemm_ms = best_ms(iters * 3, || {
            let out = conv2d_pooled(&input, &case.params, &weights, &arena);
            arena.recycle_tensor(out);
        });
        rows.push(ConvRow {
            shape: case.name.to_string(),
            macs,
            naive_ms,
            gemm_ms,
            speedup: naive_ms / gemm_ms,
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                r.macs.to_string(),
                fmt3(r.naive_ms),
                fmt3(r.gemm_ms),
                fmt3(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Convolution kernels: naive loop vs im2col + blocked GEMM",
            &["shape", "MACs", "naive ms", "gemm ms", "speedup"],
            &table_rows,
        )
    );

    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let mean = geomean(&speedups);
    let bar = 3.0;
    let pass = mean >= bar;
    println!("geomean speedup: {mean:.2}x (acceptance bar: >= {bar:.2}x)");
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        rows,
        geomean_speedup: mean,
        acceptance_bar: bar,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_conv.json", json) {
                eprintln!("failed to write BENCH_conv.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_conv.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
