//! Figure 7 (V100) / Figure 15 (RTX 2080 Ti with `--device 2080ti`):
//! normalized throughput of the cuDNN-based frameworks and IOS across the
//! benchmark CNNs at batch one.

use ios_bench::{
    fmt3, framework_comparison, geomean, maybe_write_json, normalize_by_best, render_table,
    BenchOptions,
};
use std::collections::BTreeMap;

fn main() {
    let opts = BenchOptions::from_args();
    let networks = opts.benchmark_networks();
    let mut per_framework: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut all_rows = Vec::new();
    let mut table_rows = Vec::new();

    for net in &networks {
        let rows = framework_comparison(net, &opts, false);
        let normalized = normalize_by_best(&rows);
        for ((label, norm), row) in normalized.iter().zip(&rows) {
            per_framework.entry(label.clone()).or_default().push(*norm);
            table_rows.push(vec![
                net.name.clone(),
                label.clone(),
                fmt3(row.latency_ms),
                fmt3(*norm),
            ]);
        }
        all_rows.extend(rows);
    }
    for (label, values) in &per_framework {
        table_rows.push(vec![
            "GeoMean".to_string(),
            label.clone(),
            String::new(),
            fmt3(geomean(values)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Figure 7/15: framework comparison on {} (batch {})",
                opts.device, opts.batch
            ),
            &["network", "framework", "latency (ms)", "normalized"],
            &table_rows
        )
    );
    println!(
        "paper shape: IOS best on all four networks, 1.1-1.5x over TASO / TVM-cuDNN / TensorRT"
    );
    maybe_write_json(&opts, &all_rows);
}
