//! Table 1: schedule-space statistics for the largest block of each
//! benchmark network (operator count, width, transition bound, real
//! transitions and number of feasible schedules).

use ios_bench::{maybe_write_json, render_table, BenchOptions};
use ios_core::block_statistics;

fn main() {
    let opts = BenchOptions::from_args();
    let networks = opts.benchmark_networks();
    let mut rows = Vec::new();
    let mut stats_out = Vec::new();
    for net in &networks {
        let (idx, _) = net.largest_block().expect("non-empty network");
        let graph = &net.blocks[idx].graph;
        // Quick mode bounds the ending size like the paper's pruning does;
        // the full run reproduces the unpruned counts of Table 1.
        let cap = if opts.quick { 12 } else { usize::MAX };
        let stats = block_statistics(graph, cap);
        rows.push(vec![
            net.name.clone(),
            stats.n.to_string(),
            stats.width.to_string(),
            format!("{:.1e}", stats.transition_bound),
            format!("{:.2e}", stats.transitions as f64),
            format!("{:.1e}", stats.num_schedules),
        ]);
        stats_out.push(stats);
    }
    println!(
        "{}",
        render_table(
            "Table 1: largest-block schedule-space statistics",
            &["network", "n", "d", "bound", "#(S,S')", "#schedules"],
            &rows
        )
    );
    println!("paper: Inception n=11 d=6 #(S,S')=4.9e3; RandWire n=33 d=8 1.2e6; NasNet n=18 d=8 3.1e5; SqueezeNet n=6 d=3 51");
    maybe_write_json(&opts, &stats_out);
}
