//! `pipeline_gate` — CI acceptance gate for cross-block pipelined serving.
//!
//! Serves a stream of ragged batches (`cores + 1` samples each — the batch
//! size a dynamic batcher actually produces, and the worst case for flat
//! execution's `ceil(batch / workers)` straggler round) through two
//! execution paths and compares throughput:
//!
//! * **flat batched serving** — the shipped single-dispatch fast path:
//!   each batch fans its samples out over all cores
//!   (`execute_network_batched`), and the next batch starts only when the
//!   slowest sample of the previous one finished;
//! * **pipelined serving** — a persistent [`PipelinedNetworkExecutor`]
//!   whose segment boundaries were planned from per-block latencies
//!   *measured under concurrent load* (`CpuStageProfiler` with background
//!   load workers, wrapped in `ProfiledCostModel`), fed by two dispatch
//!   workers so the head of batch `n + 1` overlaps the drain of batch `n`
//!   — exactly how a serving engine keeps the pipeline full.
//!
//! Pipelined outputs are asserted **bit-identical** to flat ones before
//! anything is timed.
//!
//! The acceptance bar is host-aware, because between-block overlap is a
//! hardware property: on hosts with ≥ 2 cores the pipelined stream must
//! reach **≥ 1.15×** the flat throughput; on a single-core host no
//! pipeline can beat flat execution through concurrency — the planner's
//! job is to *recognize* that and fall back to the single-segment plan —
//! so the gate enforces no-regression (≥ 0.95×) instead. The JSON report
//! (`BENCH_pipeline.json`, plus `--json PATH`) records which bar was
//! enforced, the chosen plan and the measured per-block costs.
//!
//! Run with: `cargo run --release -p ios-bench --bin pipeline_gate`
//! (`--quick` shortens the stream and the profiling policy for CI).

use ios_backend::{
    execute_network_batched, stack_batch, CpuStageProfiler, GroupMode, NetworkWeights,
    PipelinedNetworkExecutor, ScratchPool, TensorData,
};
use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{plan_pipeline, sequential_network_schedule, PipelinePlan, ProfiledCostModel};
use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    host_parallelism: usize,
    batch: usize,
    stream_batches: usize,
    stream_samples: usize,
    blocks: usize,
    /// Chosen segmentation, e.g. `"[0..2 | 2..4 | 4..6 | 6..8]"`.
    plan: String,
    segments: usize,
    /// Per-block latencies measured under concurrent load, µs.
    block_costs_us: Vec<f64>,
    /// Planner-predicted steady-state period, µs per sample.
    predicted_period_us: f64,
    /// Planner-predicted speedup over flat at this batch size.
    predicted_speedup: f64,
    /// Background load workers active while profiling block costs.
    profile_load_threads: usize,
    flat_ms: f64,
    pipelined_ms: f64,
    speedup: f64,
    acceptance_bar: f64,
    multi_core_bar: f64,
    pass: bool,
}

/// A uniform stack of branchy blocks — deep enough to cut into balanced
/// segments, heavy enough (≈ 10 MFLOP per block) that the per-segment
/// hand-off is noise.
fn pipeline_stack(blocks: usize) -> Network {
    let input = TensorShape::new(1, 48, 14, 14);
    let mut shape = input;
    let mut out = Vec::with_capacity(blocks);
    for i in 0..blocks {
        let mut b = GraphBuilder::new(format!("pipe_stack_b{i}"), shape);
        let x = b.input(0);
        let a = b.conv2d(
            format!("b{i}_a3"),
            x,
            Conv2dParams::relu(48, (3, 3), (1, 1), (1, 1)),
        );
        let c = b.conv2d(
            format!("b{i}_c1"),
            x,
            Conv2dParams::relu(48, (1, 1), (1, 1), (0, 0)),
        );
        let cat = b.concat(format!("b{i}_cat"), &[a, c]);
        let r = b.conv2d(
            format!("b{i}_r1"),
            cat,
            Conv2dParams::relu(48, (1, 1), (1, 1), (0, 0)),
        );
        let block = Block::new(b.build(vec![r]));
        shape = block.graph.output_shapes()[0];
        out.push(block);
    }
    Network::new("pipe_stack", input, out)
}

/// Best (minimum) wall time of `iters` runs of `f`, in milliseconds.
fn best_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let opts = BenchOptions::from_args();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The ragged batch: one more sample than the host has cores, so flat
    // execution pays a straggler round on every batch.
    let batch = cores + 1;
    let stream_batches = if opts.quick { 6 } else { 10 };
    let iters = if opts.quick { 3 } else { 5 };
    let (warmup, repeats) = if opts.quick { (1, 2) } else { (1, 3) };
    let blocks = 8;

    let net = pipeline_stack(blocks);
    let weights = NetworkWeights::precompute(&net);

    // Plan from block latencies measured under concurrent load: the
    // machine a pipeline serves on is never idle (its own stage workers
    // are the neighbours), so idle-machine profiles mis-rank boundaries.
    let profile_load_threads = cores.saturating_sub(1);
    let cost = ProfiledCostModel::with_policy(
        CpuStageProfiler::with_group_mode(GroupMode::Serial)
            .with_background_load(profile_load_threads),
        warmup,
        repeats,
    );
    let schedule = sequential_network_schedule(&net, &cost);
    let plan: PipelinePlan = plan_pipeline(&net, &schedule, &cost, cores, None);
    println!(
        "pipeline_gate: {} cores, batch {batch} ({} batches = {} samples streamed), plan {} \
         (period {:.0} µs, predicted {:.2}x vs flat, profiled under {} load workers, quick = {})",
        cores,
        stream_batches,
        stream_batches * batch,
        plan.segments,
        plan.period_us,
        plan.predicted_speedup(batch),
        profile_load_threads,
        opts.quick
    );

    // The streamed input: `stream_batches` ragged batches of distinct
    // deterministic samples.
    let stacked_batches: Vec<TensorData> = (0..stream_batches)
        .map(|b| {
            let samples: Vec<TensorData> = (0..batch)
                .map(|i| TensorData::random(net.input_shape, (b * batch + i) as u64))
                .collect();
            let refs: Vec<&TensorData> = samples.iter().collect();
            stack_batch(&refs)
        })
        .collect();

    let flat_pool = ScratchPool::new();
    let pipe_pool = Arc::new(ScratchPool::new());
    let executor = PipelinedNetworkExecutor::new(
        Arc::new(net.clone()),
        Arc::new(weights.clone()),
        plan.segments.clone(),
        Arc::clone(&pipe_pool),
    );

    // The gate is only meaningful if the pipeline is correct: bit-identical
    // stacked outputs on every batch of the stream (also warms both pools).
    for stacked in &stacked_batches {
        let flat = execute_network_batched(
            &net,
            None,
            &weights,
            std::slice::from_ref(stacked),
            &flat_pool,
        );
        let piped = executor.execute_batch(None, std::slice::from_ref(stacked));
        assert_eq!(
            piped, flat,
            "pipelined outputs must be bit-identical to flat batched outputs"
        );
        for t in flat {
            flat_pool.recycle_tensor(t);
        }
        for t in piped {
            pipe_pool.recycle_tensor(t);
        }
    }

    // Flat batched serving: single dispatch, each batch over all cores,
    // full barrier between batches.
    let flat_ms = best_ms(iters, || {
        for stacked in &stacked_batches {
            let outs = execute_network_batched(
                &net,
                None,
                &weights,
                std::slice::from_ref(stacked),
                &flat_pool,
            );
            for t in outs {
                flat_pool.recycle_tensor(t);
            }
        }
    });

    // Pipelined serving: two dispatch workers keep batches in flight
    // back-to-back, so segment workers never drain between batches.
    let pipelined_ms = best_ms(iters, || {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(stacked) = stacked_batches.get(index) else {
                        break;
                    };
                    let outs = executor.execute_batch(None, std::slice::from_ref(stacked));
                    for t in outs {
                        pipe_pool.recycle_tensor(t);
                    }
                });
            }
        });
    });

    let speedup = flat_ms / pipelined_ms;
    let multi_core_bar = 1.15;
    let single_core_bar = 0.95;
    let bar = if cores >= 2 {
        multi_core_bar
    } else {
        println!(
            "single-core host: between-block overlap cannot beat flat execution here; the \
             planner's job is to fall back to the single-segment plan, so the gate enforces \
             no-regression (>= {single_core_bar:.2}x). On hosts with >= 2 cores (CI) the bar \
             is >= {multi_core_bar:.2}x."
        );
        single_core_bar
    };
    let pass = speedup >= bar;

    println!(
        "{}",
        render_table(
            "Cross-block pipelined serving vs flat batched serving",
            &[
                "stream",
                "flat ms",
                "pipelined ms",
                "speedup",
                "plan",
                "bar"
            ],
            &[vec![
                format!("{}x batch {batch}", stream_batches),
                fmt3(flat_ms),
                fmt3(pipelined_ms),
                fmt3(speedup),
                plan.segments.to_string(),
                format!(">= {bar:.2}x"),
            ]],
        )
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        host_parallelism: cores,
        batch,
        stream_batches,
        stream_samples: stream_batches * batch,
        blocks,
        plan: plan.segments.to_string(),
        segments: plan.segments.num_segments(),
        block_costs_us: plan.block_costs_us.clone(),
        predicted_period_us: plan.period_us,
        predicted_speedup: plan.predicted_speedup(batch),
        profile_load_threads,
        flat_ms,
        pipelined_ms,
        speedup,
        acceptance_bar: bar,
        multi_core_bar,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pipeline.json", json) {
                eprintln!("failed to write BENCH_pipeline.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_pipeline.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
