//! Figure 10: the schedules IOS finds for the last Inception V3 block at
//! batch 1 vs. batch 32 (different stage counts; operator merge appears at
//! the larger batch size). Also writes Graphviz renderings.

use ios_bench::{fmt3, maybe_write_json, BenchOptions};
use ios_core::{evaluate_network, optimize_network, IosVariant, NetworkSchedule, SimCostModel};
use ios_ir::{graphviz::graph_to_dot_with_stages, Block, Network};
use ios_models::inception::inception_v3_last_block;
use ios_sim::Simulator;

fn main() {
    let opts = BenchOptions::from_args();
    let config = opts.scheduler_config(IosVariant::Both);
    let cost = SimCostModel::new(Simulator::new(opts.device));

    let mut schedules: Vec<(usize, Network, NetworkSchedule)> = Vec::new();
    for batch in [1usize, 32] {
        let graph = inception_v3_last_block(batch);
        let net = Network::new(
            format!("inception_last_block_b{batch}"),
            graph.input_shapes()[0],
            vec![Block::new(graph)],
        );
        let report = optimize_network(&net, &cost, &config);
        schedules.push((batch, net, report.schedule));
    }

    for (batch, net, schedule) in &schedules {
        println!("== schedule optimized for batch {batch} ==");
        let block_schedule = &schedule.block_schedules[0];
        print!("{}", block_schedule.render(&net.blocks[0].graph));
        println!(
            "stages: {}, merge stages: {}, latency: {} ms\n",
            block_schedule.num_stages(),
            block_schedule
                .stages
                .iter()
                .filter(|s| s.strategy == ios_core::ParallelizationStrategy::OperatorMerge)
                .count(),
            fmt3(schedule.latency_ms())
        );
        let dot = graph_to_dot_with_stages(&net.blocks[0].graph, &block_schedule.stage_sets());
        let path = format!("fig10_batch{batch}.dot");
        if std::fs::write(&path, dot).is_ok() {
            println!("wrote {path}");
        }
    }

    // Cross evaluation: each schedule executed at the other batch size.
    let (_, net1, sched1) = &schedules[0];
    let (_, net32, sched32) = &schedules[1];
    let s1_on_b1 = sched1.latency_us;
    let s32_on_b1 = evaluate_network(net1, sched32, &cost);
    let s32_on_b32 = sched32.latency_us;
    let s1_on_b32 = evaluate_network(net32, sched1, &cost);
    println!(
        "batch 1: own schedule {:.3} ms vs batch-32 schedule {:.3} ms ({:+.1}%)",
        s1_on_b1 / 1e3,
        s32_on_b1 / 1e3,
        (s32_on_b1 / s1_on_b1 - 1.0) * 100.0
    );
    println!(
        "batch 32: own schedule {:.3} ms vs batch-1 schedule {:.3} ms ({:+.1}%)",
        s32_on_b32 / 1e3,
        s1_on_b32 / 1e3,
        (s1_on_b32 / s32_on_b32 - 1.0) * 100.0
    );
    println!("paper: schedule (1) is 28% faster at batch 1; schedule (2) is 8% faster at batch 32 and merges the 1x3/3x1 pair");
    maybe_write_json(&opts, &[s1_on_b1, s32_on_b1, s32_on_b32, s1_on_b32]);
}
