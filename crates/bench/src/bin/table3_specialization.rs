//! Table 3: specialization of the schedule for batch sizes (1 / 32 / 128)
//! and for devices (Tesla K80 / V100), evaluated on Inception V3.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_core::{
    cross_evaluate, optimize_network, specialization_violations, ExecutionContext, IosVariant,
    SimCostModel,
};
use ios_sim::{DeviceKind, Simulator};

fn main() {
    let opts = BenchOptions::from_args();
    let base = if opts.quick {
        ios_models::figure2_block(1)
    } else {
        ios_models::inception_v3(1)
    };
    let config = opts.scheduler_config(IosVariant::Both);

    // (1) Batch-size specialization on the default device.
    let batches = [1usize, 32, 128];
    let nets: Vec<_> = batches.iter().map(|b| base.with_batch_size(*b)).collect();
    let cost = SimCostModel::new(Simulator::new(opts.device));
    let schedules: Vec<_> = nets
        .iter()
        .zip(batches)
        .map(|(net, b)| {
            (
                format!("batch {b}"),
                optimize_network(net, &cost, &config).schedule,
            )
        })
        .collect();
    let schedule_refs: Vec<(String, &_)> = schedules.iter().map(|(l, s)| (l.clone(), s)).collect();
    let contexts: Vec<_> = nets
        .iter()
        .zip(batches)
        .map(|(net, b)| ExecutionContext::new(format!("batch {b}"), net, &cost))
        .collect();
    let batch_cells = cross_evaluate(&contexts, &schedule_refs);
    let rows: Vec<Vec<String>> = batch_cells
        .iter()
        .map(|c| {
            vec![
                c.executed_on.clone(),
                c.optimized_for.clone(),
                fmt3(c.latency_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 3 (1): batch-size specialization (Inception V3)",
            &["executed on", "optimized for", "latency (ms)"],
            &rows
        )
    );
    let violations = specialization_violations(&batch_cells, 1e-6);
    println!(
        "specialized schedule wins on its own batch size: {}",
        violations.is_empty()
    );

    // (2) Device specialization at batch one.
    let net = &nets[0];
    let v100 = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let k80 = SimCostModel::new(Simulator::new(DeviceKind::TeslaK80));
    let dev_schedules = [
        (
            "K80".to_string(),
            optimize_network(net, &k80, &config).schedule,
        ),
        (
            "V100".to_string(),
            optimize_network(net, &v100, &config).schedule,
        ),
    ];
    let dev_refs: Vec<(String, &_)> = dev_schedules.iter().map(|(l, s)| (l.clone(), s)).collect();
    let k80_ctx = ExecutionContext::new("K80", net, &k80);
    let v100_ctx = ExecutionContext::new("V100", net, &v100);
    let device_cells = cross_evaluate(&[k80_ctx, v100_ctx], &dev_refs);
    let rows: Vec<Vec<String>> = device_cells
        .iter()
        .map(|c| {
            vec![
                c.executed_on.clone(),
                c.optimized_for.clone(),
                fmt3(c.latency_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 3 (2): device specialization (batch 1)",
            &["executed on", "optimized for", "latency (ms)"],
            &rows
        )
    );
    let violations = specialization_violations(&device_cells, 1e-6);
    println!(
        "specialized schedule wins on its own device: {}",
        violations.is_empty()
    );
    println!("paper: diagonal entries are always the fastest (e.g. 4.03 ms for V100/batch-1 optimized on V100)");
    maybe_write_json(&opts, &(batch_cells, device_cells));
}
