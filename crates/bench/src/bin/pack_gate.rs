//! `pack_gate` — CI acceptance gate for the packed-weight GEMM path.
//!
//! Times the pre-packed tile-major convolution ([`conv2d_packed_pooled`])
//! against the unpacked im2col + GEMM kernel of PR 2
//! ([`conv2d_pooled`]) on the serving-hot layer shapes of
//! [`ios_bench::pack_bench_shapes`], after first asserting the two paths
//! are **bit-identical** on every shape (packing is a pure weight-layout
//! permutation). Packing happens once per network at weight-precompute
//! time, so only the per-call execution is timed. The acceptance bar is a
//! geometric mean speedup ≥ 1.15×.
//!
//! Speedups are medians of per-round paired ratios (the two variants run
//! adjacently within each round, so a noisy stretch on a shared
//! single-core CI host covers both sides of the ratio and cancels out);
//! the reported per-variant times are best-of-N.
//!
//! A machine-readable report is always written to `BENCH_pack.json` (and
//! additionally to `--json PATH` when given) so the packed path's
//! performance trajectory is tracked across PRs.
//!
//! Run with: `cargo run --release -p ios-bench --bin pack_gate`
//! (`--quick` lowers the iteration count; the shapes stay full-size so the
//! gate keeps measuring the memory-bound serving regime).

use ios_backend::ops_cpu::{conv2d_packed_pooled, conv2d_pooled, conv_weights};
use ios_backend::{PackedFilter, ScratchPool, TensorData};
use ios_bench::{
    fmt3, geomean, maybe_write_json, median, pack_bench_shapes, render_table, BenchOptions,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct PackRow {
    shape: String,
    unpacked_ms: f64,
    packed_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    rows: Vec<PackRow>,
    geomean_speedup: f64,
    acceptance_bar: f64,
    pass: bool,
}

/// One timed call of `f`, in milliseconds.
fn time_ms<O>(f: impl FnOnce() -> O) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let opts = BenchOptions::from_args();
    let iters = if opts.quick { 7 } else { 15 };
    let arena = ScratchPool::new();
    let cases = pack_bench_shapes();
    println!(
        "pack_gate: {} shapes, best of {iters} runs each (quick = {})",
        cases.len(),
        opts.quick
    );

    let mut rows = Vec::new();
    for case in &cases {
        let input = TensorData::random(case.input, 7);
        let in_c_per_group = case.input.channels / case.params.groups;
        let weights = conv_weights(
            11,
            case.params.out_channels,
            in_c_per_group,
            case.params.kernel,
        );
        let k_len = in_c_per_group * case.params.kernel.0 * case.params.kernel.1;
        let packed = PackedFilter::pack(
            &weights,
            case.params.out_channels,
            case.params.groups,
            k_len,
        );

        // The gate is only meaningful if the packed path is exact.
        let unpacked_out = conv2d_pooled(&input, &case.params, &weights, &arena);
        let packed_out = conv2d_packed_pooled(&input, &case.params, &packed, &arena);
        assert_eq!(
            packed_out, unpacked_out,
            "{}: packed output must be bit-identical to the unpacked kernel",
            case.name
        );
        arena.recycle_tensor(unpacked_out);
        arena.recycle_tensor(packed_out);

        // The two variants interleave within every round, and the speedup
        // is the median of the per-round paired ratios: a noisy stretch on
        // the (shared) host covers an adjacent unpacked/packed pair, so
        // the round's ratio stays clean even when its absolute times do
        // not, and the median discards the rounds a burst split in half.
        // The reported times are best-of-N.
        let mut unpacked_ms = f64::INFINITY;
        let mut packed_ms = f64::INFINITY;
        let mut ratios = Vec::with_capacity(iters);
        for _ in 0..iters {
            let u = time_ms(|| {
                let out = conv2d_pooled(&input, &case.params, &weights, &arena);
                arena.recycle_tensor(out);
            });
            let p = time_ms(|| {
                let out = conv2d_packed_pooled(&input, &case.params, &packed, &arena);
                arena.recycle_tensor(out);
            });
            unpacked_ms = unpacked_ms.min(u);
            packed_ms = packed_ms.min(p);
            ratios.push(u / p);
        }
        rows.push(PackRow {
            shape: case.name.to_string(),
            unpacked_ms,
            packed_ms,
            speedup: median(&mut ratios),
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                fmt3(r.unpacked_ms),
                fmt3(r.packed_ms),
                fmt3(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Convolution kernels: unpacked im2col+GEMM vs pre-packed tile-major",
            &["shape", "unpacked ms", "packed ms", "speedup"],
            &table_rows,
        )
    );

    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let mean = geomean(&speedups);
    let bar = 1.15;
    let pass = mean >= bar;
    println!("geomean speedup: {mean:.3}x (acceptance bar: >= {bar:.2}x)");
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        rows,
        geomean_speedup: mean,
        acceptance_bar: bar,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pack.json", json) {
                eprintln!("failed to write BENCH_pack.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_pack.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
