//! Table 2: the benchmark networks (blocks, operators, main operator type).

use ios_bench::{maybe_write_json, render_table, BenchOptions};

fn main() {
    let opts = BenchOptions::from_args();
    let networks = opts.benchmark_networks();
    let rows: Vec<Vec<String>> = networks
        .iter()
        .map(|net| {
            let op_type = if net.name.contains("randwire") || net.name.contains("nasnet") {
                "Relu-SepConv"
            } else {
                "Conv-Relu"
            };
            vec![
                net.name.clone(),
                net.num_blocks().to_string(),
                net.num_operators().to_string(),
                net.num_compute_units().to_string(),
                op_type.to_string(),
                format!("{:.2}", net.total_flops() as f64 / 1e9),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 2: CNN benchmarks",
            &[
                "network",
                "#blocks",
                "#operators",
                "#compute units",
                "operator type",
                "GFLOPs"
            ],
            &rows
        )
    );
    println!("paper: Inception 11/119 Conv-Relu; RandWire 3/120 Relu-SepConv; NasNet 13/374 Relu-SepConv; SqueezeNet 10/50 Conv-Relu");
    maybe_write_json(&opts, &rows);
}
