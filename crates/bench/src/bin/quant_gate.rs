//! `quant_gate` — CI acceptance gate for epilogue fusion and the int8
//! quantized execution path.
//!
//! On the serving-hot layer shapes of [`ios_bench::quant_bench_shapes`] —
//! the backbone layers that actually carry epilogues — each run with a
//! full bias + residual + ReLU epilogue:
//!
//! 1. **Fused f32 ≥ 1.01×** (geomean) over the PR-4 baseline — the packed
//!    kernel followed by bias, residual-add and ReLU executed the way the
//!    pre-fusion engine served them: as separate elementwise ops, each
//!    writing a fresh arena tensor — after asserting the fused path is
//!    **bit-identical** to those separate passes.
//! 2. **Int8 ≥ 1.8×** (geomean) over the fused f32 kernel, with the
//!    quantized output **byte-identical** to the naive integer oracle on
//!    the smallest shape, and the calibration error against the f32 kernel
//!    within the documented `k_len · s_in · s_w[oc] · 128` bound on every
//!    shape.
//!
//! Both f32 references are *pinned at the SSE2 tier* (forced through the
//! dispatch module), the kernel these bars were calibrated against in
//! PR 7 — a gate baseline must stay fixed so the bars keep detecting
//! regressions in the paths this gate owns (fusion and the int8 kernel)
//! rather than flipping whenever an unrelated kernel improves. The fused
//! bar is a *no-regression floor*, not a magnitude claim: the measured
//! geomean is ~1.05× on the 1-core CI host but its run-to-run spread
//! reaches ±0.03, so the bar sits at 1.01× — it trips the moment fusion
//! stops paying for itself while staying clear of scheduler noise. The
//! explicit AVX2 f32 tile (PR 9) outruns the int8 path outright, so the
//! active-tier fused time and the int8-vs-active ratio are reported
//! informationally (`fuse x@act` column, `int8_vs_active_*` JSON fields)
//! without a bar; the cross-tier f32 comparison itself is `simd_gate`'s
//! job. On AVX2 hosts int8's value is the ~4× smaller weight cache, not
//! latency — see the README "Quantized execution" section.
//!
//! Speedups are medians of per-round paired ratios (the variants run
//! adjacently within each round, so a noisy stretch on a shared host
//! cancels out of the ratio); the reported per-variant times are
//! best-of-N. A machine-readable report is always written to
//! `BENCH_quant.json` (and additionally to `--json PATH` when given).
//!
//! Run with: `cargo run --release -p ios-bench --bin quant_gate`
//! (`--quick` lowers the iteration count; the shapes stay full-size).

use ios_backend::gemm::{conv2d_im2col_packed_fused, conv2d_im2col_quant_fused};
use ios_backend::ops_cpu::{conv2d_naive_quant, conv2d_packed_pooled, conv_weights};
use ios_backend::simd::{self, Isa};
use ios_backend::{
    sample_scale, ConvEpilogue, PackedFilter, QuantizedFilter, ScratchPool, TensorData,
};
use ios_bench::{
    fmt3, geomean, maybe_write_json, median, quant_bench_shapes, render_table, BenchOptions,
};
use ios_ir::{Activation, Conv2dParams};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct QuantRow {
    shape: String,
    baseline_ms: f64,
    fused_ms: f64,
    fused_active_ms: f64,
    int8_ms: f64,
    fused_speedup: f64,
    int8_speedup: f64,
    int8_vs_active_fused: f64,
    max_calibration_error: f64,
    calibration_bound: f64,
}

#[derive(Serialize)]
struct Report {
    pinned_isa: String,
    active_isa: String,
    rows: Vec<QuantRow>,
    fused_geomean_speedup: f64,
    int8_geomean_speedup: f64,
    int8_vs_active_geomean: f64,
    fused_acceptance_bar: f64,
    int8_acceptance_bar: f64,
    pass: bool,
}

/// One timed call of `f`, in milliseconds.
fn time_ms<O>(f: impl FnOnce() -> O) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let opts = BenchOptions::from_args();
    // The fusion bar is a ~5 % effect, so even quick mode needs enough
    // paired rounds for the per-round median to settle on a 1-core host.
    let iters = if opts.quick { 13 } else { 21 };
    let arena = ScratchPool::new();
    let cases = quant_bench_shapes();
    // The fusion and int8 bars are calibrated against the SSE2-tier f32
    // kernel (see the module docs); the active tier rides along unbarred.
    let pinned = Isa::Sse2.min(simd::detected_isa());
    let active = simd::active_isa();
    println!(
        "quant_gate: {} shapes, best of {iters} runs each (f32 reference pinned at {pinned}, \
         active isa = {active}, quick = {})",
        cases.len(),
        opts.quick
    );

    // The byte-identity oracle run is O(naive); do it once, on the
    // cheapest shape.
    let oracle_shape = cases
        .iter()
        .min_by_key(|c| c.input.num_elements())
        .map(|c| c.name)
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut calibration_ok = true;
    for case in &cases {
        let input = TensorData::random(case.input, 7);
        let in_c_per_group = case.input.channels / case.params.groups;
        let weights = conv_weights(
            11,
            case.params.out_channels,
            in_c_per_group,
            case.params.kernel,
        );
        let k_len = in_c_per_group * case.params.kernel.0 * case.params.kernel.1;
        let packed = PackedFilter::pack(
            &weights,
            case.params.out_channels,
            case.params.groups,
            k_len,
        );
        let quant = QuantizedFilter::quantize(
            &weights,
            case.params.out_channels,
            case.params.groups,
            k_len,
        );

        // Epilogue operands: per-output-channel bias and a full residual
        // tensor, applied with ReLU — the serving-hot epilogue shape.
        let plain = Conv2dParams {
            activation: Activation::None,
            ..case.params
        };
        let out_channels = case.params.out_channels;
        let bias = conv_weights(13, out_channels, 1, (1, 1));
        let out_shape = {
            let probe = conv2d_packed_pooled(&input, &plain, &packed, &arena);
            let shape = probe.shape;
            arena.recycle_tensor(probe);
            shape
        };
        let residual = TensorData::random(out_shape, 17);
        let plane = out_shape.height * out_shape.width;
        let ep = ConvEpilogue {
            input_relu: false,
            bias: Some(&bias),
            residual: Some(&residual),
            relu: true,
        };

        // PR-4 baseline: the packed kernel, then bias, residual-add and
        // ReLU the way the pre-fusion engine actually served them — as
        // separate elementwise graph ops, each reading its input and
        // writing a fresh arena tensor (the same arithmetic order the
        // fused store uses, so the bit-identity assert below holds).
        let run_baseline = || {
            let conv = conv2d_packed_pooled(&input, &plain, &packed, &arena);
            let mut biased = arena.take_tensor(conv.shape);
            for n in 0..conv.shape.batch {
                for (oc, &bv) in bias.iter().enumerate() {
                    let start = (n * out_channels + oc) * plane;
                    let src = &conv.data[start..start + plane];
                    for (d, &v) in biased.data[start..start + plane].iter_mut().zip(src) {
                        *d = v + bv;
                    }
                }
            }
            arena.recycle_tensor(conv);
            let mut added = arena.take_tensor(biased.shape);
            for ((d, &v), &r) in added.data.iter_mut().zip(&biased.data).zip(&residual.data) {
                *d = v + r;
            }
            arena.recycle_tensor(biased);
            let mut out = arena.take_tensor(added.shape);
            for (d, &v) in out.data.iter_mut().zip(&added.data) {
                *d = v.max(0.0);
            }
            arena.recycle_tensor(added);
            out
        };
        let run_fused = || conv2d_im2col_packed_fused(&input, &plain, &packed, &ep, &arena);
        let run_int8 = || conv2d_im2col_quant_fused(&input, &plain, &quant, &ep, &arena);

        // The gate is only meaningful if fusion is exact.
        let baseline_out = run_baseline();
        let fused_out = run_fused();
        assert_eq!(
            fused_out, baseline_out,
            "{}: fused epilogue must be bit-identical to the separate passes",
            case.name
        );
        arena.recycle_tensor(baseline_out);

        // Int8 accuracy: calibration bound on every shape, byte-identity
        // to the naive integer oracle on the cheapest one.
        let int8_out = run_int8();
        if case.name == oracle_shape {
            let oracle = conv2d_naive_quant(&input, &plain, &quant, &ep);
            assert_eq!(
                int8_out, oracle,
                "{}: int8 fast path must be byte-identical to the naive oracle",
                case.name
            );
        }
        let s_in = sample_scale(&input.data, false);
        let mut max_err = 0.0f64;
        let mut bound = 0.0f64;
        for oc in 0..out_channels {
            let oc_bound = f64::from(k_len as f32 * s_in * quant.scales()[oc] * 128.0);
            bound = bound.max(oc_bound);
            for n in 0..out_shape.batch {
                let start = (n * out_channels + oc) * plane;
                for i in 0..plane {
                    let d = f64::from((int8_out.data[start + i] - fused_out.data[start + i]).abs());
                    max_err = max_err.max(d);
                    if d > oc_bound {
                        calibration_ok = false;
                    }
                }
            }
        }
        arena.recycle_tensor(fused_out);
        arena.recycle_tensor(int8_out);

        // The variants are interleaved within every round, and each
        // speedup is the *median of the per-round paired ratios*: a noisy
        // stretch on the (shared) host covers a whole adjacent
        // baseline/fused/int8 group, so the round's ratio stays clean
        // even when its absolute times do not, and the median discards the
        // rounds a burst split in half. The reported times are best-of-N.
        // Baseline and barred-fused run at the pinned tier; the active-tier
        // fused time and int8 run at the live dispatch.
        let mut baseline_ms = f64::INFINITY;
        let mut fused_ms = f64::INFINITY;
        let mut fused_active_ms = f64::INFINITY;
        let mut int8_ms = f64::INFINITY;
        let mut fused_ratios = Vec::with_capacity(iters);
        let mut int8_ratios = Vec::with_capacity(iters);
        let mut active_ratios = Vec::with_capacity(iters);
        for _ in 0..iters {
            let b =
                simd::with_forced_isa(pinned, || time_ms(|| arena.recycle_tensor(run_baseline())));
            let f = simd::with_forced_isa(pinned, || time_ms(|| arena.recycle_tensor(run_fused())));
            let fa = time_ms(|| arena.recycle_tensor(run_fused()));
            let q = time_ms(|| arena.recycle_tensor(run_int8()));
            baseline_ms = baseline_ms.min(b);
            fused_ms = fused_ms.min(f);
            fused_active_ms = fused_active_ms.min(fa);
            int8_ms = int8_ms.min(q);
            fused_ratios.push(b / f);
            int8_ratios.push(f / q);
            active_ratios.push(fa / q);
        }
        let fused_speedup = median(&mut fused_ratios);
        let int8_speedup = median(&mut int8_ratios);
        let int8_vs_active_fused = median(&mut active_ratios);
        rows.push(QuantRow {
            shape: case.name.to_string(),
            baseline_ms,
            fused_ms,
            fused_active_ms,
            int8_ms,
            fused_speedup,
            int8_speedup,
            int8_vs_active_fused,
            max_calibration_error: max_err,
            calibration_bound: bound,
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                fmt3(r.baseline_ms),
                fmt3(r.fused_ms),
                fmt3(r.fused_active_ms),
                fmt3(r.int8_ms),
                fmt3(r.fused_speedup),
                fmt3(r.int8_speedup),
                fmt3(r.int8_vs_active_fused),
                format!("{:.2e}", r.max_calibration_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Epilogue fusion + int8: separate passes vs fused f32 (pinned tier) vs quantized",
            &[
                "shape",
                "separate ms",
                "fused ms",
                "fused@act ms",
                "int8 ms",
                "fuse x",
                "int8 x",
                "int8 x@act",
                "max |err|",
            ],
            &table_rows,
        )
    );

    let fused_mean = geomean(&rows.iter().map(|r| r.fused_speedup).collect::<Vec<_>>());
    let int8_mean = geomean(&rows.iter().map(|r| r.int8_speedup).collect::<Vec<_>>());
    let active_mean = geomean(
        &rows
            .iter()
            .map(|r| r.int8_vs_active_fused)
            .collect::<Vec<_>>(),
    );
    let fused_bar = 1.01;
    let int8_bar = 1.8;
    let pass = fused_mean >= fused_bar && int8_mean >= int8_bar && calibration_ok;
    println!(
        "fused-f32 geomean speedup ({pinned} tier): {fused_mean:.3}x (bar: >= {fused_bar:.2}x)"
    );
    println!(
        "int8 geomean speedup over fused-f32 ({pinned} tier): {int8_mean:.3}x (bar: >= {int8_bar:.2}x)"
    );
    println!(
        "int8 geomean vs fused-f32 at the active tier ({active}): {active_mean:.3}x (informational)"
    );
    println!(
        "calibration: {}",
        if calibration_ok {
            "within bound on every shape"
        } else {
            "BOUND EXCEEDED"
        }
    );
    println!("RESULT: {}", if pass { "PASS" } else { "FAIL" });

    let report = Report {
        pinned_isa: pinned.name().to_string(),
        active_isa: active.name().to_string(),
        rows,
        fused_geomean_speedup: fused_mean,
        int8_geomean_speedup: int8_mean,
        int8_vs_active_geomean: active_mean,
        fused_acceptance_bar: fused_bar,
        int8_acceptance_bar: int8_bar,
        pass,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_quant.json", json) {
                eprintln!("failed to write BENCH_quant.json: {e}");
            }
        }
        Err(e) => eprintln!("failed to serialize BENCH_quant.json: {e}"),
    }
    maybe_write_json(&opts, &report);
    if !pass {
        std::process::exit(1);
    }
}
