//! Figure 1: hardware peak performance vs. number of convolutions vs.
//! average FLOPs per convolution across GPU/CNN generations.

use ios_bench::{fmt3, maybe_write_json, render_table, BenchOptions};
use ios_sim::trends::{gap_growth, trend_point};
use ios_sim::DeviceKind;

fn main() {
    let opts = BenchOptions::from_args();
    let points = vec![
        trend_point(&ios_models::vgg16(1), DeviceKind::Gtx980Ti, 2013),
        trend_point(&ios_models::inception_v3(1), DeviceKind::Gtx1080, 2015),
        trend_point(&ios_models::nasnet_a(1), DeviceKind::TeslaV100, 2018),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.year.to_string(),
                p.network.clone(),
                p.device.clone(),
                fmt3(p.peak_gflops),
                p.num_convs.to_string(),
                fmt3(p.avg_mflops_per_conv),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 1: peak performance vs per-convolution work",
            &[
                "year",
                "network",
                "device",
                "peak GFLOP/s",
                "#conv",
                "MFLOPs/conv"
            ],
            &rows
        )
    );
    println!(
        "utilization gap growth 2013→2018: {:.1}x (paper: peak ×2.7, per-conv work ÷28)",
        gap_growth(&points[0], &points[2])
    );
    maybe_write_json(&opts, &points);
}
