//! The stage-latency measurer used by the scheduler.
//!
//! The paper's `GenerateStage` directly measures the latency of a candidate
//! stage on the hardware; [`Simulator`] plays that role here. It lowers
//! graph operators to kernels for a given library, runs the multi-stream
//! stage simulation on a given device, and (optionally) adds multiplicative
//! measurement noise so that robustness of the dynamic program to noisy
//! profiles can be tested.

use crate::device::{DeviceKind, DeviceSpec, ExecutionOverheads};
use crate::kernel::{kernel_for_op, KernelLibrary, KernelSpec};
use crate::stream::{simulate_stage, KernelEvent, StageSimulation};
use ios_ir::{Graph, OpId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the measurement process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Standard deviation of the multiplicative Gaussian measurement noise
    /// (0.0 = deterministic measurements, the default).
    pub noise_std: f64,
    /// Seed of the noise generator.
    pub seed: u64,
    /// Number of repetitions averaged per measurement (the paper repeats
    /// each experiment 5 times); only meaningful when noise is enabled.
    pub repeats: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            noise_std: 0.0,
            seed: 0x105,
            repeats: 1,
        }
    }
}

impl MeasureConfig {
    /// Deterministic measurements (no noise).
    #[must_use]
    pub fn deterministic() -> Self {
        MeasureConfig::default()
    }

    /// Noisy measurements with the given relative standard deviation,
    /// averaged over `repeats` runs.
    #[must_use]
    pub fn noisy(noise_std: f64, seed: u64, repeats: usize) -> Self {
        MeasureConfig {
            noise_std,
            seed,
            repeats: repeats.max(1),
        }
    }
}

/// Result of measuring one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMeasurement {
    /// Measured latency in µs.
    pub latency_us: f64,
    /// Kernel-level timeline of the (last) simulated run.
    pub events: Vec<KernelEvent>,
    /// Total floating point work of the stage.
    pub total_flops: u64,
}

impl StageMeasurement {
    /// Utilization of the stage relative to the device peak.
    #[must_use]
    pub fn utilization(&self, device: &DeviceSpec) -> f64 {
        crate::cost::utilization(self.total_flops, self.latency_us, device)
    }
}

/// The simulated execution engine: lowers operators to kernels and measures
/// stage latencies on a simulated device.
#[derive(Debug)]
pub struct Simulator {
    device: DeviceSpec,
    library: KernelLibrary,
    overheads: ExecutionOverheads,
    config: MeasureConfig,
    rng: Mutex<StdRng>,
}

impl Simulator {
    /// Creates a simulator for a device preset with the IOS execution-engine
    /// overheads and the cuDNN kernel library — the paper's configuration.
    #[must_use]
    pub fn new(device: DeviceKind) -> Self {
        Simulator::with_settings(
            device.spec(),
            KernelLibrary::CuDnn,
            ExecutionOverheads::ios_engine(),
            MeasureConfig::deterministic(),
        )
    }

    /// Creates a fully customized simulator.
    #[must_use]
    pub fn with_settings(
        device: DeviceSpec,
        library: KernelLibrary,
        overheads: ExecutionOverheads,
        config: MeasureConfig,
    ) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(config.seed));
        Simulator {
            device,
            library,
            overheads,
            config,
            rng,
        }
    }

    /// The device being simulated.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The kernel library operators are lowered with.
    #[must_use]
    pub fn library(&self) -> KernelLibrary {
        self.library
    }

    /// The host-side overheads in effect.
    #[must_use]
    pub fn overheads(&self) -> ExecutionOverheads {
        self.overheads
    }

    /// Lowers one operator to its kernel.
    #[must_use]
    pub fn kernel(&self, graph: &Graph, op: OpId) -> KernelSpec {
        kernel_for_op(graph, op, self.library)
    }

    /// Measures a stage given explicit kernel groups.
    #[must_use]
    pub fn measure_kernel_stage(&self, groups: &[Vec<KernelSpec>]) -> StageMeasurement {
        let runs = if self.config.noise_std > 0.0 {
            self.config.repeats
        } else {
            1
        };
        let mut last: Option<StageSimulation> = None;
        let mut total = 0.0;
        for _ in 0..runs {
            let sim = simulate_stage(groups, &self.device, self.overheads);
            total += self.apply_noise(sim.latency_us);
            last = Some(sim);
        }
        let sim = last.expect("at least one run");
        StageMeasurement {
            latency_us: total / runs as f64,
            events: sim.events,
            total_flops: sim.total_flops,
        }
    }

    /// Measures a stage of graph operators executed with "concurrent
    /// execution": each inner slice is one group (executed sequentially in
    /// the given order), groups run concurrently.
    #[must_use]
    pub fn measure_stage(&self, graph: &Graph, groups: &[Vec<OpId>]) -> StageMeasurement {
        let kernel_groups: Vec<Vec<KernelSpec>> = groups
            .iter()
            .map(|g| g.iter().map(|op| self.kernel(graph, *op)).collect())
            .collect();
        self.measure_kernel_stage(&kernel_groups)
    }

    /// Measures the purely sequential execution of a list of operators (one
    /// group, one stream).
    #[must_use]
    pub fn measure_sequential(&self, graph: &Graph, ops: &[OpId]) -> StageMeasurement {
        self.measure_stage(graph, &[ops.to_vec()])
    }

    fn apply_noise(&self, latency: f64) -> f64 {
        if self.config.noise_std <= 0.0 {
            return latency;
        }
        let mut rng = self.rng.lock();
        // Box-Muller transform on two uniform samples to avoid depending on
        // rand_distr just for a Gaussian.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (latency * (1.0 + self.config.noise_std * z)).max(latency * 0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder, TensorShape};

    fn branchy_graph(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("branchy", TensorShape::new(batch, 256, 16, 16));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(256, (3, 3), (1, 1), (1, 1)));
        let c = b.conv2d("c", input, Conv2dParams::relu(256, (3, 3), (1, 1), (1, 1)));
        let d = b.conv2d("d", input, Conv2dParams::relu(128, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c, d]);
        b.build(vec![cat])
    }

    #[test]
    fn measure_stage_concurrent_vs_sequential() {
        let g = branchy_graph(1);
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let ops = [OpId(0), OpId(1), OpId(2)];
        let seq = sim.measure_sequential(&g, &ops);
        let conc = sim.measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)], vec![OpId(2)]]);
        assert!(conc.latency_us < seq.latency_us);
        assert_eq!(seq.total_flops, conc.total_flops);
        assert!(conc.utilization(sim.device()) > seq.utilization(sim.device()));
        assert_eq!(seq.events.len(), 3);
    }

    #[test]
    fn deterministic_measurements_are_repeatable() {
        let g = branchy_graph(1);
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let a = sim.measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)]]);
        let b = sim.measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)]]);
        assert_eq!(a.latency_us, b.latency_us);
    }

    #[test]
    fn noisy_measurements_vary_but_average_close() {
        let g = branchy_graph(1);
        let clean = Simulator::new(DeviceKind::TeslaV100);
        let noisy = Simulator::with_settings(
            DeviceKind::TeslaV100.spec(),
            KernelLibrary::CuDnn,
            ExecutionOverheads::ios_engine(),
            MeasureConfig::noisy(0.05, 42, 16),
        );
        let truth = clean
            .measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)]])
            .latency_us;
        let measured = noisy
            .measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)]])
            .latency_us;
        assert!(measured > 0.0);
        assert!(
            (measured - truth).abs() / truth < 0.2,
            "measured {measured}, truth {truth}"
        );
        // Two consecutive noisy measurements differ.
        let m2 = noisy
            .measure_stage(&g, &[vec![OpId(0)], vec![OpId(1)]])
            .latency_us;
        assert_ne!(measured, m2);
    }

    #[test]
    fn library_changes_latency() {
        let g = branchy_graph(1);
        let cudnn = Simulator::new(DeviceKind::TeslaV100);
        let trt = Simulator::with_settings(
            DeviceKind::TeslaV100.spec(),
            KernelLibrary::TensorRt,
            ExecutionOverheads::ios_engine(),
            MeasureConfig::deterministic(),
        );
        let ops = [OpId(0), OpId(1), OpId(2), OpId(3)];
        let a = cudnn.measure_sequential(&g, &ops).latency_us;
        let b = trt.measure_sequential(&g, &ops).latency_us;
        assert!(
            b < a,
            "TensorRT kernels should be faster than stock cuDNN ({b} vs {a})"
        );
        assert_eq!(trt.library(), KernelLibrary::TensorRt);
    }

    #[test]
    fn batch_size_scales_latency_sublinearly_then_linearly() {
        // Going from batch 1 to batch 32 must cost less than 32× (the device
        // is underutilized at batch 1), and clearly more than 4×.
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let g1 = branchy_graph(1);
        let g32 = branchy_graph(32);
        let ops = [OpId(0), OpId(1), OpId(2), OpId(3)];
        let l1 = sim.measure_sequential(&g1, &ops).latency_us;
        let l32 = sim.measure_sequential(&g32, &ops).latency_us;
        let ratio = l32 / l1;
        assert!(ratio < 32.0, "ratio {ratio}");
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn empty_stage_measures_zero() {
        let g = branchy_graph(1);
        let sim = Simulator::new(DeviceKind::TeslaV100);
        let m = sim.measure_stage(&g, &[]);
        assert_eq!(m.latency_us, 0.0);
        assert_eq!(m.total_flops, 0);
    }
}
