//! Multi-stream stage execution simulation.
//!
//! A stage of an IOS schedule consists of one or more *groups*; each group
//! is a sequence of kernels issued on its own CUDA stream, and kernels from
//! different streams execute concurrently whenever the device has spare
//! resources. This module simulates that execution with a processor-sharing
//! model:
//!
//! * Each resident kernel demands a fraction of the device proportional to
//!   its thread-block count; when the total demand exceeds the device, every
//!   kernel is scaled back proportionally. Co-resident kernels additionally
//!   pay a contention penalty that grows with the number of concurrently
//!   executing kernels (`DeviceSpec::contention_alpha`).
//! * Memory bandwidth is shared the same way; if the combined activation
//!   working set of resident kernels exceeds the L2 capacity, effective
//!   bandwidth drops by `DeviceSpec::l2_miss_factor` — the "conflict over
//!   shared resources such as the last-level cache" the paper describes for
//!   large batch sizes (Section 7.2).
//! * Kernel launches are serialized on the host: the g-th group's first
//!   kernel cannot start before `g` launches have been issued, and each
//!   subsequent kernel in a stream pays one launch gap.
//! * A stage with more than one group ends with a stream synchronization
//!   that costs `ExecutionOverheads::stage_sync_us`.

use crate::device::{DeviceSpec, ExecutionOverheads};
use crate::kernel::KernelSpec;
use serde::{Deserialize, Serialize};

/// One kernel execution on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelEvent {
    /// Kernel name (operator name).
    pub name: String,
    /// Index of the group (stream) the kernel ran on.
    pub group: usize,
    /// Start time in µs relative to the stage start.
    pub start_us: f64,
    /// End time in µs relative to the stage start.
    pub end_us: f64,
    /// Warps the kernel kept resident while running.
    pub warps: usize,
    /// Floating point work of the kernel.
    pub flops: u64,
}

impl KernelEvent {
    /// Duration of the kernel in µs.
    #[must_use]
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Result of simulating one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSimulation {
    /// End-to-end latency of the stage in µs (including launch gaps and the
    /// final synchronization).
    pub latency_us: f64,
    /// Per-kernel timeline.
    pub events: Vec<KernelEvent>,
    /// Total floating point work of the stage.
    pub total_flops: u64,
}

impl StageSimulation {
    /// Achieved throughput of the stage in TFLOP/s.
    #[must_use]
    pub fn achieved_tflops(&self) -> f64 {
        crate::cost::achieved_tflops(self.total_flops, self.latency_us)
    }

    /// Utilization of the stage relative to the device's peak.
    #[must_use]
    pub fn utilization(&self, device: &DeviceSpec) -> f64 {
        crate::cost::utilization(self.total_flops, self.latency_us, device)
    }
}

/// Per-stream simulation state.
struct StreamState<'a> {
    kernels: &'a [KernelSpec],
    /// Index of the kernel currently executing or about to execute.
    next: usize,
    /// Fraction of the current kernel already completed.
    progress: f64,
    /// Time at which the current kernel's launch completes and it may start.
    ready_at: f64,
    /// Time at which the current kernel actually started executing.
    started_at: f64,
    /// True once every kernel of the stream has finished.
    done: bool,
}

impl StreamState<'_> {
    fn current(&self) -> Option<&KernelSpec> {
        if self.done {
            None
        } else {
            self.kernels.get(self.next)
        }
    }
}

/// Simulates the concurrent execution of `groups` on `device`.
///
/// Each inner slice is one group: its kernels run sequentially on a
/// dedicated stream. Groups run concurrently. Returns the stage latency and
/// the kernel timeline.
///
/// An empty `groups` slice yields a zero-latency stage.
#[must_use]
pub fn simulate_stage(
    groups: &[Vec<KernelSpec>],
    device: &DeviceSpec,
    overheads: ExecutionOverheads,
) -> StageSimulation {
    let non_empty: Vec<&Vec<KernelSpec>> = groups.iter().filter(|g| !g.is_empty()).collect();
    if non_empty.is_empty() {
        return StageSimulation {
            latency_us: 0.0,
            events: Vec::new(),
            total_flops: 0,
        };
    }

    let mut streams: Vec<StreamState<'_>> = non_empty
        .iter()
        .enumerate()
        .map(|(i, g)| StreamState {
            kernels: g.as_slice(),
            next: 0,
            progress: 0.0,
            // The host issues the first kernel of each stream one after the
            // other, so stream i waits for i+1 launch gaps.
            ready_at: overheads.kernel_launch_us * (i + 1) as f64,
            started_at: f64::NAN,
            done: false,
        })
        .collect();

    let mut now = 0.0_f64;
    let mut events = Vec::new();
    let mut total_flops = 0u64;
    for g in &non_empty {
        for k in g.iter() {
            total_flops += k.flops;
        }
    }

    const EPS: f64 = 1e-9;
    let max_iterations = 16 * (1 + non_empty.iter().map(|g| g.len()).sum::<usize>());
    let mut iterations = 0;

    while streams.iter().any(|s| !s.done) {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "stage simulation failed to converge"
        );

        // Which kernels are resident right now?
        let active: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done && s.ready_at <= now + EPS)
            .map(|(i, _)| i)
            .collect();

        if active.is_empty() {
            // Jump to the next launch completion.
            let next_ready = streams
                .iter()
                .filter(|s| !s.done)
                .map(|s| s.ready_at)
                .fold(f64::INFINITY, f64::min);
            now = next_ready;
            continue;
        }

        // Record start times for kernels that just became active.
        for &i in &active {
            if streams[i].started_at.is_nan() {
                streams[i].started_at = now;
            }
        }

        // Compute resource shares.
        let demands: Vec<f64> = active
            .iter()
            .map(|&i| {
                let k = streams[i].current().expect("active stream has a kernel");
                k.thread_blocks as f64 / device.sm_count as f64
            })
            .collect();
        let total_demand: f64 = demands.iter().sum();
        // Multi-tenancy contention: kernels from different streams compete
        // for schedulers, cache and DRAM; the penalty grows with the number
        // of co-resident kernels (not with the size of any single kernel).
        let contention =
            1.0 / (1.0 + device.contention_alpha * (active.len() as f64 - 1.0).max(0.0));
        let combined_ws: u64 = active
            .iter()
            .map(|&i| streams[i].current().expect("active").working_set_bytes)
            .sum();
        let l2_factor = if active.len() > 1 && combined_ws as usize > device.l2_cache_bytes {
            device.l2_miss_factor
        } else {
            1.0
        };

        // Remaining time of each active kernel at the current rates.
        let mut remaining: Vec<f64> = Vec::with_capacity(active.len());
        for (idx, &i) in active.iter().enumerate() {
            let k = streams[i].current().expect("active");
            let share = if total_demand > 1.0 {
                demands[idx] / total_demand
            } else {
                demands[idx]
            }
            .min(1.0);
            let compute_rate =
                device.peak_flops_per_us() * share * k.compute_efficiency * contention;
            let mem_share = if active.len() > 1 {
                (demands[idx] / total_demand.max(1.0))
                    .max(1.0 / active.len() as f64)
                    .min(1.0)
            } else {
                1.0
            };
            let memory_rate = device.bytes_per_us() * k.memory_efficiency * mem_share * l2_factor;
            let frac_left = 1.0 - streams[i].progress;
            let t = crate::cost::roofline_time_us(
                k.flops as f64 * frac_left,
                k.mem_bytes as f64 * frac_left,
                compute_rate,
                memory_rate,
            );
            remaining.push(t.max(EPS));
        }

        // Next event: either a kernel finishes or a pending stream becomes ready.
        let next_finish = remaining.iter().cloned().fold(f64::INFINITY, f64::min);
        let next_ready = streams
            .iter()
            .filter(|s| !s.done && s.ready_at > now + EPS)
            .map(|s| s.ready_at - now)
            .fold(f64::INFINITY, f64::min);
        let dt = next_finish.min(next_ready);
        debug_assert!(dt.is_finite() && dt > 0.0);

        // Advance all active kernels by dt.
        for (idx, &i) in active.iter().enumerate() {
            let advanced = dt / remaining[idx];
            let s = &mut streams[i];
            s.progress += (1.0 - s.progress) * advanced.min(1.0);
            if s.progress >= 1.0 - 1e-6 {
                // Kernel complete.
                let k = &s.kernels[s.next];
                let warps = k.warps().min(device.max_resident_warps());
                events.push(KernelEvent {
                    name: k.name.clone(),
                    group: i,
                    start_us: s.started_at,
                    end_us: now + dt,
                    warps,
                    flops: k.flops,
                });
                s.next += 1;
                s.progress = 0.0;
                s.started_at = f64::NAN;
                if s.next >= s.kernels.len() {
                    s.done = true;
                } else {
                    s.ready_at = now + dt + overheads.kernel_launch_us;
                }
            }
        }
        now += dt;
    }

    let sync = if non_empty.len() > 1 {
        overheads.stage_sync_us
    } else {
        0.0
    };
    StageSimulation {
        latency_us: now + sync,
        events,
        total_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::kernel::{conv2d_kernel, KernelLibrary};
    use ios_ir::{Conv2dParams, TensorShape};

    fn v100() -> DeviceSpec {
        DeviceKind::TeslaV100.spec()
    }

    fn fig2_conv(name: &str, out_channels: usize) -> KernelSpec {
        conv2d_kernel(
            name,
            TensorShape::new(1, 384, 15, 15),
            Conv2dParams::relu(out_channels, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        )
    }

    #[test]
    fn empty_stage_has_zero_latency() {
        let sim = simulate_stage(&[], &v100(), ExecutionOverheads::none());
        assert_eq!(sim.latency_us, 0.0);
        assert!(sim.events.is_empty());
        let sim = simulate_stage(&[vec![]], &v100(), ExecutionOverheads::ios_engine());
        assert_eq!(sim.latency_us, 0.0);
    }

    #[test]
    fn single_kernel_matches_isolated_cost_plus_launch() {
        let k = fig2_conv("a", 384);
        let isolated = crate::cost::isolated_kernel_latency_us(&k, &v100());
        let sim = simulate_stage(&[vec![k]], &v100(), ExecutionOverheads::new(3.0, 6.0));
        assert_eq!(sim.events.len(), 1);
        assert!(
            (sim.latency_us - (isolated + 3.0)).abs() < 1e-3,
            "{} vs {}",
            sim.latency_us,
            isolated + 3.0
        );
        // Single group → no stream sync.
        assert!(sim.latency_us < isolated + 5.0);
    }

    #[test]
    fn sequential_kernels_add_up() {
        let a = fig2_conv("a", 384);
        let b = fig2_conv("b", 384);
        let oh = ExecutionOverheads::none();
        let single = simulate_stage(&[vec![a.clone()]], &v100(), oh).latency_us;
        let double = simulate_stage(&[vec![a, b]], &v100(), oh).latency_us;
        assert!((double - 2.0 * single).abs() < 1e-3);
    }

    #[test]
    fn concurrent_execution_beats_sequential_for_small_kernels() {
        // Two under-occupying convolutions: running them in two streams must
        // be notably faster than running them back to back (Figure 2's core
        // observation), but not faster than the larger of the two alone.
        let a = fig2_conv("a", 384);
        let b = fig2_conv("b", 768);
        let oh = ExecutionOverheads::ios_engine();
        let dev = v100();
        let seq = simulate_stage(&[vec![a.clone(), b.clone()]], &dev, oh).latency_us;
        let conc = simulate_stage(&[vec![a.clone()], vec![b.clone()]], &dev, oh).latency_us;
        let a_alone = simulate_stage(&[vec![a]], &dev, oh).latency_us;
        let b_alone = simulate_stage(&[vec![b]], &dev, oh).latency_us;
        assert!(conc < 0.8 * seq, "concurrent {conc} vs sequential {seq}");
        assert!(
            conc >= b_alone.max(a_alone) * 0.99,
            "cannot be faster than the longest member"
        );
    }

    #[test]
    fn concurrency_helps_less_when_device_is_saturated() {
        // At batch 32 each conv already fills the device; concurrency gains shrink.
        let big = |name: &str| {
            conv2d_kernel(
                name,
                TensorShape::new(32, 384, 15, 15),
                Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
                KernelLibrary::CuDnn,
            )
        };
        let dev = v100();
        let oh = ExecutionOverheads::none();
        let seq = simulate_stage(&[vec![big("a"), big("b")]], &dev, oh).latency_us;
        let conc = simulate_stage(&[vec![big("a")], vec![big("b")]], &dev, oh).latency_us;
        let small_gain = seq / conc;
        // Compare against the batch-one gain.
        let a1 = fig2_conv("a", 384);
        let b1 = fig2_conv("b", 384);
        let seq1 = simulate_stage(&[vec![a1.clone(), b1.clone()]], &dev, oh).latency_us;
        let conc1 = simulate_stage(&[vec![a1], vec![b1]], &dev, oh).latency_us;
        let big_gain = seq1 / conc1;
        assert!(
            big_gain > small_gain + 0.15,
            "batch-1 gain {big_gain} vs batch-32 gain {small_gain}"
        );
    }

    #[test]
    fn oversubscription_contention_slows_everyone() {
        // Eight concurrent big kernels oversubscribe the device; the total
        // time must exceed work/peak by a visible contention margin.
        let dev = v100();
        let oh = ExecutionOverheads::none();
        let kernels: Vec<Vec<KernelSpec>> = (0..8)
            .map(|i| {
                vec![conv2d_kernel(
                    format!("k{i}"),
                    TensorShape::new(4, 384, 15, 15),
                    Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)),
                    KernelLibrary::CuDnn,
                )]
            })
            .collect();
        let sim = simulate_stage(&kernels, &dev, oh);
        let total_flops: u64 = sim.total_flops;
        let ideal_us = total_flops as f64 / (dev.peak_flops_per_us() * 0.82);
        assert!(
            sim.latency_us > 1.1 * ideal_us,
            "{} vs ideal {}",
            sim.latency_us,
            ideal_us
        );
    }

    #[test]
    fn sync_overhead_only_for_multi_group_stages() {
        let a = fig2_conv("a", 384);
        let b = fig2_conv("b", 384);
        let oh = ExecutionOverheads::new(0.0, 50.0);
        let dev = v100();
        let one_group = simulate_stage(&[vec![a.clone(), b.clone()]], &dev, oh).latency_us;
        let two_groups = simulate_stage(&[vec![a.clone()], vec![b.clone()]], &dev, oh).latency_us;
        // The two-group stage pays the 50 µs sync; with zero launch cost and
        // these small kernels the sync is clearly visible.
        let one_group_no_sync =
            simulate_stage(&[vec![a, b]], &dev, ExecutionOverheads::none()).latency_us;
        assert!((one_group - one_group_no_sync).abs() < 1e-6);
        assert!(two_groups > 50.0);
    }

    #[test]
    fn events_are_consistent() {
        let a = fig2_conv("a", 384);
        let b = fig2_conv("b", 768);
        let c = fig2_conv("c", 384);
        let sim = simulate_stage(
            &[vec![a, b], vec![c]],
            &v100(),
            ExecutionOverheads::ios_engine(),
        );
        assert_eq!(sim.events.len(), 3);
        for e in &sim.events {
            assert!(e.end_us > e.start_us);
            assert!(e.end_us <= sim.latency_us + 1e-6);
            assert!(e.warps > 0);
        }
        // Kernels of the same group must not overlap.
        let group0: Vec<&KernelEvent> = sim.events.iter().filter(|e| e.group == 0).collect();
        assert_eq!(group0.len(), 2);
        let (first, second) = if group0[0].start_us < group0[1].start_us {
            (group0[0], group0[1])
        } else {
            (group0[1], group0[0])
        };
        assert!(second.start_us >= first.end_us - 1e-6);
        assert!(sim.utilization(&v100()) > 0.0);
        assert!(sim.achieved_tflops() > 0.0);
    }

    #[test]
    fn contention_on_k80_is_worse_than_on_v100() {
        // The same four-way concurrent stage helps on V100 but barely helps
        // (or hurts) on K80, the basis of the device-specialization result.
        let make = |name: &str| fig2_conv(name, 384);
        let oh = ExecutionOverheads::ios_engine();
        let gain = |dev: &DeviceSpec| {
            let seq = simulate_stage(&[vec![make("a"), make("b"), make("c"), make("d")]], dev, oh)
                .latency_us;
            let conc = simulate_stage(
                &[
                    vec![make("a")],
                    vec![make("b")],
                    vec![make("c")],
                    vec![make("d")],
                ],
                dev,
                oh,
            )
            .latency_us;
            seq / conc
        };
        let v100_gain = gain(&DeviceKind::TeslaV100.spec());
        let k80_gain = gain(&DeviceKind::TeslaK80.spec());
        assert!(
            v100_gain > k80_gain + 0.3,
            "V100 gain {v100_gain}, K80 gain {k80_gain}"
        );
    }
}
