//! # ios-sim — analytical GPU execution simulator
//!
//! The paper profiles candidate stages directly on an NVIDIA GPU through
//! cuDNN and CUDA streams. This crate replaces that hardware substrate with
//! an analytical simulator that preserves the properties the scheduler
//! depends on:
//!
//! * **Under-utilization of small kernels.** Kernels are modeled as tiled
//!   GEMMs; a batch-one convolution produces only a handful of thread blocks
//!   and therefore cannot occupy all streaming multiprocessors of a large
//!   GPU ([`kernel`], [`cost`]).
//! * **Concurrent execution.** Groups of a stage run in separate streams and
//!   share SMs and memory bandwidth; sharing is proportional to each
//!   kernel's thread-block demand ([`stream`]).
//! * **Resource contention.** Oversubscribing the device or overflowing the
//!   L2 working set slows everyone down, which is what makes greedy
//!   schedules lose to IOS ([`stream`], [`device`]).
//! * **Synchronization overhead.** Multi-stream stages pay a synchronization
//!   cost, which is why greedy degrades SqueezeNet in Figure 6.
//! * **Profiling.** The simulated timeline can be sampled for active warps,
//!   reproducing the CUPTI measurement of Figure 8 ([`profiler`]).
//!
//! The top-level entry point is [`Simulator`], which measures the latency of
//! a stage (a set of groups executed concurrently) exactly like the paper's
//! execution engine measures candidate stages for the dynamic program.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod device;
pub mod kernel;
pub mod measure;
pub mod profiler;
pub mod stream;
pub mod trends;

pub use cost::{isolated_kernel_latency_us, occupancy, roofline_time_us};
pub use device::{DeviceKind, DeviceSpec, ExecutionOverheads};
pub use kernel::{conv2d_kernel, kernel_for_op, KernelLibrary, KernelSpec};
pub use measure::{MeasureConfig, Simulator, StageMeasurement};
pub use profiler::{ActiveWarpProfile, WarpSample};
pub use stream::{simulate_stage, KernelEvent, StageSimulation};
