//! Active-warp profiling of simulated timelines.
//!
//! Figure 8 of the paper samples the number of active warps on the GPU with
//! CUPTI while repeatedly executing a block under the sequential schedule and
//! under the IOS schedule, showing that IOS keeps ~1.6× more warps active on
//! average. This module produces the same measurement from the simulator's
//! kernel timeline.

use crate::device::DeviceSpec;
use crate::stream::KernelEvent;
use serde::{Deserialize, Serialize};

/// One sample of the active-warp counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarpSample {
    /// Sample timestamp in µs.
    pub time_us: f64,
    /// Number of warps active on the device at that instant.
    pub active_warps: usize,
}

/// Sampled active-warp profile of a simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveWarpProfile {
    /// Samples in increasing time order.
    pub samples: Vec<WarpSample>,
    /// Sampling interval in µs.
    pub interval_us: f64,
    /// Total duration profiled in µs.
    pub duration_us: f64,
}

impl ActiveWarpProfile {
    /// Builds a profile by sampling a kernel timeline every `interval_us`.
    ///
    /// The timeline may come from a single stage or from the concatenation
    /// of several stages (see [`concat_timelines`]). Warps of concurrently
    /// executing kernels add up, clamped to the device's resident capacity.
    #[must_use]
    pub fn from_events(
        events: &[KernelEvent],
        duration_us: f64,
        interval_us: f64,
        device: &DeviceSpec,
    ) -> Self {
        assert!(interval_us > 0.0, "sampling interval must be positive");
        let mut samples = Vec::new();
        let mut t = 0.0;
        let cap = device.max_resident_warps();
        while t <= duration_us {
            let active: usize = events
                .iter()
                .filter(|e| e.start_us <= t && t < e.end_us)
                .map(|e| e.warps)
                .sum();
            samples.push(WarpSample {
                time_us: t,
                active_warps: active.min(cap),
            });
            t += interval_us;
        }
        ActiveWarpProfile {
            samples,
            interval_us,
            duration_us,
        }
    }

    /// Mean number of active warps over the profiled duration.
    #[must_use]
    pub fn average_active_warps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.active_warps as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Peak number of active warps.
    #[must_use]
    pub fn peak_active_warps(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.active_warps)
            .max()
            .unwrap_or(0)
    }

    /// Active warp-time per millisecond: the `warps/ms` figure of merit
    /// annotated in Figure 8 (1.7×10⁸ for sequential vs 2.7×10⁸ for IOS).
    ///
    /// Each warp contributes its residency time; the value is normalized per
    /// millisecond of wall-clock time.
    #[must_use]
    pub fn warp_time_per_ms(&self, cycles_per_us: f64) -> f64 {
        self.average_active_warps() * cycles_per_us * 1e3
    }
}

/// Concatenates the timelines of consecutive stages into a single timeline,
/// offsetting each stage by the end of the previous one.
#[must_use]
pub fn concat_timelines(stages: &[(f64, Vec<KernelEvent>)]) -> (f64, Vec<KernelEvent>) {
    let mut offset = 0.0;
    let mut events = Vec::new();
    for (latency, stage_events) in stages {
        for e in stage_events {
            let mut shifted = e.clone();
            shifted.start_us += offset;
            shifted.end_us += offset;
            events.push(shifted);
        }
        offset += latency;
    }
    (offset, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn event(name: &str, start: f64, end: f64, warps: usize) -> KernelEvent {
        KernelEvent {
            name: name.to_string(),
            group: 0,
            start_us: start,
            end_us: end,
            warps,
            flops: 0,
        }
    }

    #[test]
    fn sampling_counts_overlapping_kernels() {
        let dev = DeviceKind::TeslaV100.spec();
        let events = vec![event("a", 0.0, 10.0, 100), event("b", 5.0, 15.0, 200)];
        let profile = ActiveWarpProfile::from_events(&events, 20.0, 1.0, &dev);
        // At t=0..4 only a (100), t=5..9 both (300), t=10..14 only b (200), after: 0.
        let at = |t: f64| {
            profile
                .samples
                .iter()
                .find(|s| (s.time_us - t).abs() < 1e-9)
                .unwrap()
                .active_warps
        };
        assert_eq!(at(0.0), 100);
        assert_eq!(at(7.0), 300);
        assert_eq!(at(12.0), 200);
        assert_eq!(at(16.0), 0);
        assert_eq!(profile.peak_active_warps(), 300);
        assert!(profile.average_active_warps() > 0.0);
    }

    #[test]
    fn warps_clamped_to_device_capacity() {
        let dev = DeviceKind::TeslaK80.spec();
        let cap = dev.max_resident_warps();
        let events = vec![event("a", 0.0, 10.0, cap * 3)];
        let profile = ActiveWarpProfile::from_events(&events, 10.0, 1.0, &dev);
        assert_eq!(profile.peak_active_warps(), cap);
    }

    #[test]
    fn concat_offsets_stage_timelines() {
        let s1 = (10.0, vec![event("a", 0.0, 10.0, 64)]);
        let s2 = (8.0, vec![event("b", 0.0, 8.0, 32)]);
        let (total, merged) = concat_timelines(&[s1, s2]);
        assert_eq!(total, 18.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[1].start_us, 10.0);
        assert_eq!(merged[1].end_us, 18.0);
    }

    #[test]
    fn empty_profile_is_zero() {
        let dev = DeviceKind::TeslaV100.spec();
        let profile = ActiveWarpProfile::from_events(&[], 0.0, 2.1, &dev);
        assert_eq!(profile.average_active_warps(), 0.0);
        assert_eq!(profile.peak_active_warps(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let dev = DeviceKind::TeslaV100.spec();
        let _ = ActiveWarpProfile::from_events(&[], 1.0, 0.0, &dev);
    }
}
