//! Isolated kernel cost model (roofline + occupancy).
//!
//! A kernel running alone on the device achieves a compute throughput of
//! `peak · occupancy · efficiency`, where occupancy is the fraction of SMs
//! its thread blocks can cover, and a memory throughput of
//! `bandwidth · efficiency`. Its latency is the larger of the compute time
//! and the memory time (the roofline model).

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;

/// Fraction of the device's SMs the kernel can occupy when running alone.
///
/// A kernel with fewer thread blocks than SMs leaves the remaining SMs idle;
/// a kernel with more is capped at 1.0 (extra blocks queue behind earlier
/// waves).
#[must_use]
pub fn occupancy(kernel: &KernelSpec, device: &DeviceSpec) -> f64 {
    let frac = kernel.thread_blocks as f64 / device.sm_count as f64;
    frac.min(1.0)
}

/// Roofline execution time in µs given compute and memory rates.
///
/// `compute_rate` is in FLOP/µs and `memory_rate` in bytes/µs. A kernel with
/// zero FLOPs (e.g. concat) is purely memory bound and vice versa.
#[must_use]
pub fn roofline_time_us(flops: f64, bytes: f64, compute_rate: f64, memory_rate: f64) -> f64 {
    let compute_time = if compute_rate > 0.0 {
        flops / compute_rate
    } else {
        0.0
    };
    let memory_time = if memory_rate > 0.0 {
        bytes / memory_rate
    } else {
        0.0
    };
    compute_time.max(memory_time)
}

/// Latency in µs of the kernel executing alone on the device, excluding the
/// host-side launch overhead (the stream simulator accounts for that).
#[must_use]
pub fn isolated_kernel_latency_us(kernel: &KernelSpec, device: &DeviceSpec) -> f64 {
    let occ = occupancy(kernel, device);
    let compute_rate = device.peak_flops_per_us() * occ * kernel.compute_efficiency;
    let memory_rate = device.bytes_per_us() * kernel.memory_efficiency;
    roofline_time_us(
        kernel.flops as f64,
        kernel.mem_bytes as f64,
        compute_rate,
        memory_rate,
    )
}

/// Achieved throughput in TFLOP/s of a kernel that ran for `latency_us`.
///
/// This is the quantity annotated on the stages of Figure 2.
#[must_use]
pub fn achieved_tflops(flops: u64, latency_us: f64) -> f64 {
    if latency_us <= 0.0 {
        0.0
    } else {
        flops as f64 / latency_us / 1e6
    }
}

/// Hardware utilization (fraction of peak) corresponding to an achieved
/// throughput, as reported in Figure 2's per-stage annotations.
#[must_use]
pub fn utilization(flops: u64, latency_us: f64, device: &DeviceSpec) -> f64 {
    if latency_us <= 0.0 {
        0.0
    } else {
        (flops as f64 / latency_us) / device.peak_flops_per_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::kernel::{conv2d_kernel, KernelLibrary};
    use ios_ir::{Conv2dParams, TensorShape};

    fn v100() -> DeviceSpec {
        DeviceKind::TeslaV100.spec()
    }

    fn figure2_conv(out_channels: usize) -> crate::kernel::KernelSpec {
        // Figure 2's block: input 384 channels at 15x15 (0.6 GFLOPs for the
        // 384-channel branch), 3x3 kernels.
        conv2d_kernel(
            "conv",
            TensorShape::new(1, 384, 15, 15),
            Conv2dParams::relu(out_channels, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        )
    }

    #[test]
    fn occupancy_is_low_for_batch_one_conv_on_v100() {
        let k = figure2_conv(384);
        let occ = occupancy(&k, &v100());
        // 24 blocks over 80 SMs → 30%: in the ballpark of the 33% utilization
        // Figure 2 reports for this conv running alone.
        assert!(occ > 0.2 && occ < 0.45, "occupancy = {occ}");
    }

    #[test]
    fn occupancy_saturates_for_large_batch() {
        let k = conv2d_kernel(
            "conv",
            TensorShape::new(32, 384, 15, 15),
            Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        );
        assert_eq!(occupancy(&k, &v100()), 1.0);
    }

    #[test]
    fn isolated_latency_matches_figure2_order_of_magnitude() {
        // Figure 2 reports 0.12 ms for the 0.6 GFLOP conv alone on V100.
        let k = figure2_conv(384);
        let latency = isolated_kernel_latency_us(&k, &v100());
        assert!(latency > 60.0 && latency < 250.0, "latency = {latency} µs");
        let util = utilization(k.flops, latency, &v100());
        assert!(util > 0.15 && util < 0.5, "utilization = {util}");
    }

    #[test]
    fn bigger_conv_gets_better_utilization() {
        let small = figure2_conv(384);
        let big = figure2_conv(768);
        let dev = v100();
        let u_small = utilization(small.flops, isolated_kernel_latency_us(&small, &dev), &dev);
        let u_big = utilization(big.flops, isolated_kernel_latency_us(&big, &dev), &dev);
        // Figure 2: the 1.2 GFLOP branch reaches 59% vs 33% for the 0.6 GFLOP one.
        assert!(u_big > 1.3 * u_small, "u_small={u_small} u_big={u_big}");
    }

    #[test]
    fn same_kernel_is_faster_on_v100_than_k80() {
        let k = figure2_conv(384);
        let lat_v100 = isolated_kernel_latency_us(&k, &DeviceKind::TeslaV100.spec());
        let lat_k80 = isolated_kernel_latency_us(&k, &DeviceKind::TeslaK80.spec());
        assert!(lat_k80 > lat_v100);
        // But not by the full peak ratio, because the V100 is under-occupied.
        let peak_ratio = 15_700.0 / 4_100.0;
        assert!(lat_k80 / lat_v100 < peak_ratio);
    }

    #[test]
    fn roofline_picks_the_binding_side() {
        assert_eq!(roofline_time_us(100.0, 10.0, 10.0, 10.0), 10.0);
        assert_eq!(roofline_time_us(10.0, 100.0, 10.0, 10.0), 10.0);
        assert_eq!(roofline_time_us(0.0, 50.0, 10.0, 10.0), 5.0);
        assert_eq!(roofline_time_us(50.0, 0.0, 10.0, 10.0), 5.0);
    }

    #[test]
    fn achieved_tflops_sanity() {
        // 1 GFLOP in 100 µs = 10 TFLOP/s.
        assert!((achieved_tflops(1_000_000_000, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(achieved_tflops(100, 0.0), 0.0);
    }
}
