//! GPU device specifications.
//!
//! The presets carry the published characteristics of the GPUs used in the
//! paper (Tesla V100 and K80, RTX 2080 Ti, and the GTX 980 Ti / GTX 1080 of
//! the Figure 1 trend plot). Only the handful of parameters that the cost
//! model consumes are represented.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a known device preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Tesla V100 (Volta, 2018) — the paper's primary platform.
    TeslaV100,
    /// NVIDIA Tesla K80 (Kepler, 2014) — the low-end device of Table 3 (2).
    TeslaK80,
    /// NVIDIA GeForce RTX 2080 Ti (Turing) — Appendix B.
    Rtx2080Ti,
    /// NVIDIA GeForce GTX 1080 (Pascal) — Figure 1, 2015 representative.
    Gtx1080,
    /// NVIDIA GeForce GTX 980 Ti (Maxwell) — Figure 1, 2013 representative.
    Gtx980Ti,
    /// NVIDIA A100 (Ampere) — mentioned in the introduction (19.5 TFLOP/s).
    A100,
}

impl DeviceKind {
    /// All known presets.
    #[must_use]
    pub fn all() -> &'static [DeviceKind] {
        &[
            DeviceKind::TeslaV100,
            DeviceKind::TeslaK80,
            DeviceKind::Rtx2080Ti,
            DeviceKind::Gtx1080,
            DeviceKind::Gtx980Ti,
            DeviceKind::A100,
        ]
    }

    /// The specification of this preset.
    #[must_use]
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceKind::TeslaV100 => DeviceSpec {
                name: "Tesla V100".to_string(),
                sm_count: 80,
                peak_gflops: 15_700.0,
                mem_bandwidth_gbs: 900.0,
                l2_cache_bytes: 6 * 1024 * 1024,
                max_warps_per_sm: 64,
                contention_alpha: 0.25,
                l2_miss_factor: 0.65,
            },
            DeviceKind::TeslaK80 => DeviceSpec {
                name: "Tesla K80".to_string(),
                sm_count: 13,
                peak_gflops: 4_100.0,
                mem_bandwidth_gbs: 240.0,
                l2_cache_bytes: 1536 * 1024,
                max_warps_per_sm: 64,
                contention_alpha: 0.45,
                l2_miss_factor: 0.55,
            },
            DeviceKind::Rtx2080Ti => DeviceSpec {
                name: "RTX 2080 Ti".to_string(),
                sm_count: 68,
                peak_gflops: 13_400.0,
                mem_bandwidth_gbs: 616.0,
                l2_cache_bytes: 5632 * 1024,
                max_warps_per_sm: 32,
                contention_alpha: 0.28,
                l2_miss_factor: 0.62,
            },
            DeviceKind::Gtx1080 => DeviceSpec {
                name: "GTX 1080".to_string(),
                sm_count: 20,
                peak_gflops: 8_425.0,
                mem_bandwidth_gbs: 320.0,
                l2_cache_bytes: 2048 * 1024,
                max_warps_per_sm: 64,
                contention_alpha: 0.35,
                l2_miss_factor: 0.6,
            },
            DeviceKind::Gtx980Ti => DeviceSpec {
                name: "GTX 980 Ti".to_string(),
                sm_count: 22,
                peak_gflops: 5_767.0,
                mem_bandwidth_gbs: 336.0,
                l2_cache_bytes: 3072 * 1024,
                max_warps_per_sm: 64,
                contention_alpha: 0.35,
                l2_miss_factor: 0.6,
            },
            DeviceKind::A100 => DeviceSpec {
                name: "A100".to_string(),
                sm_count: 108,
                peak_gflops: 19_500.0,
                mem_bandwidth_gbs: 1_555.0,
                l2_cache_bytes: 40 * 1024 * 1024,
                max_warps_per_sm: 64,
                contention_alpha: 0.22,
                l2_miss_factor: 0.7,
            },
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// The device parameters consumed by the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Last-level (L2) cache capacity in bytes; concurrent working sets that
    /// exceed it pay the [`DeviceSpec::l2_miss_factor`] bandwidth penalty.
    pub l2_cache_bytes: usize,
    /// Maximum resident warps per SM (used by the active-warp profiler).
    pub max_warps_per_sm: usize,
    /// Strength of the slowdown when the device is oversubscribed by
    /// concurrent kernels (larger = contention hurts more).
    pub contention_alpha: f64,
    /// Multiplier applied to memory bandwidth when the combined working set
    /// of concurrently resident kernels exceeds the L2 capacity.
    pub l2_miss_factor: f64,
}

impl DeviceSpec {
    /// Peak throughput in FLOP/µs (convenient unit for latencies in µs).
    #[must_use]
    pub fn peak_flops_per_us(&self) -> f64 {
        self.peak_gflops * 1e3
    }

    /// Memory bandwidth in bytes/µs.
    #[must_use]
    pub fn bytes_per_us(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e3
    }

    /// Total number of warps the device can keep resident.
    #[must_use]
    pub fn max_resident_warps(&self) -> usize {
        self.sm_count * self.max_warps_per_sm
    }
}

/// Host-side overheads of the execution engine driving the device.
///
/// These model the costs that are *not* kernel execution: launching a kernel
/// from the CPU, and synchronizing the streams of a multi-group stage before
/// the next stage may start. Different frameworks have very different per-op
/// overheads, which is part of what the Figure 7 baselines capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionOverheads {
    /// Host time to launch one kernel, in µs.
    pub kernel_launch_us: f64,
    /// Cost of synchronizing the streams of a stage that uses more than one
    /// group, in µs (applied once per multi-group stage).
    pub stage_sync_us: f64,
}

impl ExecutionOverheads {
    /// Overheads of the IOS execution engine (thin C++/cuDNN wrapper).
    #[must_use]
    pub fn ios_engine() -> Self {
        ExecutionOverheads {
            kernel_launch_us: 3.0,
            stage_sync_us: 6.0,
        }
    }

    /// Zero overheads (useful for isolating the kernel cost model in tests).
    #[must_use]
    pub fn none() -> Self {
        ExecutionOverheads {
            kernel_launch_us: 0.0,
            stage_sync_us: 0.0,
        }
    }

    /// Overheads with explicit values.
    #[must_use]
    pub fn new(kernel_launch_us: f64, stage_sync_us: f64) -> Self {
        ExecutionOverheads {
            kernel_launch_us,
            stage_sync_us,
        }
    }
}

impl Default for ExecutionOverheads {
    fn default() -> Self {
        ExecutionOverheads::ios_engine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_figure1_peaks() {
        // Figure 1 quotes 5767, 8425 and 15700 GFLOP/s for the 2013/2015/2018
        // representatives.
        assert_eq!(DeviceKind::Gtx980Ti.spec().peak_gflops, 5_767.0);
        assert_eq!(DeviceKind::Gtx1080.spec().peak_gflops, 8_425.0);
        assert_eq!(DeviceKind::TeslaV100.spec().peak_gflops, 15_700.0);
        // The introduction quotes 19.5 TFLOP/s for A100.
        assert_eq!(DeviceKind::A100.spec().peak_gflops, 19_500.0);
    }

    #[test]
    fn v100_is_much_more_parallel_than_k80() {
        let v100 = DeviceKind::TeslaV100.spec();
        let k80 = DeviceKind::TeslaK80.spec();
        assert!(v100.sm_count > 5 * k80.sm_count);
        assert!(v100.peak_gflops > 3.0 * k80.peak_gflops);
        assert!(v100.max_resident_warps() > k80.max_resident_warps());
    }

    #[test]
    fn unit_conversions() {
        let v100 = DeviceKind::TeslaV100.spec();
        assert!((v100.peak_flops_per_us() - 15_700_000.0).abs() < 1.0);
        assert!((v100.bytes_per_us() - 900_000.0).abs() < 1.0);
    }

    #[test]
    fn all_presets_are_well_formed() {
        for kind in DeviceKind::all() {
            let spec = kind.spec();
            assert!(spec.sm_count > 0, "{kind}");
            assert!(spec.peak_gflops > 0.0);
            assert!(spec.mem_bandwidth_gbs > 0.0);
            assert!(spec.l2_cache_bytes > 0);
            assert!(spec.l2_miss_factor > 0.0 && spec.l2_miss_factor <= 1.0);
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn overhead_presets() {
        let ios = ExecutionOverheads::ios_engine();
        assert!(ios.kernel_launch_us > 0.0);
        assert!(ios.stage_sync_us > 0.0);
        let none = ExecutionOverheads::none();
        assert_eq!(none.kernel_launch_us, 0.0);
        assert_eq!(ExecutionOverheads::default(), ios);
    }
}
