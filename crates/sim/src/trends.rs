//! Data behind Figure 1: the widening gap between hardware peak performance
//! and per-convolution work.
//!
//! The figure plots, for three generations (2013/2015/2018), the GPU peak
//! throughput, the number of convolutions of a representative CNN and the
//! average FLOPs per convolution. The devices come from
//! [`crate::device::DeviceKind`]; the network statistics come from any
//! [`ios_ir::Network`] (the model zoo provides VGG, Inception V3 and NasNet).

use crate::device::DeviceKind;
use ios_ir::Network;
use serde::{Deserialize, Serialize};

/// One row of the Figure 1 trend plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Representative year.
    pub year: u32,
    /// Network name.
    pub network: String,
    /// Device name.
    pub device: String,
    /// Device peak throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Number of convolution-like compute units in the network.
    pub num_convs: usize,
    /// Average MFLOPs per convolution.
    pub avg_mflops_per_conv: f64,
    /// Time to execute one *average* convolution at peak, in µs — a direct
    /// proxy for how little work each kernel gives the device.
    pub us_per_conv_at_peak: f64,
}

/// Builds the trend point for a (network, device, year) triple.
#[must_use]
pub fn trend_point(network: &Network, device: DeviceKind, year: u32) -> TrendPoint {
    let spec = device.spec();
    let num_convs = network.num_compute_units();
    let avg_mflops = network.avg_mflops_per_conv();
    TrendPoint {
        year,
        network: network.name.clone(),
        device: spec.name.clone(),
        peak_gflops: spec.peak_gflops,
        num_convs,
        avg_mflops_per_conv: avg_mflops,
        us_per_conv_at_peak: avg_mflops * 1e6 / spec.peak_flops_per_us() / 1e0,
    }
}

/// Utilization gap indicator: the ratio between peak throughput growth and
/// per-convolution work shrinkage across two trend points. A value greater
/// than one means the gap widened.
#[must_use]
pub fn gap_growth(earlier: &TrendPoint, later: &TrendPoint) -> f64 {
    let peak_growth = later.peak_gflops / earlier.peak_gflops;
    let work_shrink =
        earlier.avg_mflops_per_conv / later.avg_mflops_per_conv.max(f64::MIN_POSITIVE);
    peak_growth * work_shrink
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Block, Conv2dParams, GraphBuilder, Network, TensorShape};

    fn toy_network(name: &str, convs: usize, channels: usize) -> Network {
        let input = TensorShape::new(1, channels, 28, 28);
        let mut b = GraphBuilder::new(format!("{name}_block"), input);
        let mut v = b.input(0);
        for i in 0..convs {
            v = b.conv2d(
                format!("c{i}"),
                v,
                Conv2dParams::relu(channels, (3, 3), (1, 1), (1, 1)),
            );
        }
        let graph = b.build(vec![v]);
        Network::new(name, input, vec![Block::new(graph)])
    }

    #[test]
    fn trend_point_reports_network_and_device() {
        let net = toy_network("vgg_like", 4, 64);
        let p = trend_point(&net, DeviceKind::Gtx980Ti, 2013);
        assert_eq!(p.num_convs, 4);
        assert_eq!(p.peak_gflops, 5_767.0);
        assert!(p.avg_mflops_per_conv > 0.0);
        assert!(p.us_per_conv_at_peak > 0.0);
        assert_eq!(p.year, 2013);
    }

    #[test]
    fn gap_grows_when_peak_rises_and_convs_shrink() {
        let big_convs = toy_network("vgg_like", 4, 256);
        let small_convs = toy_network("nasnet_like", 16, 32);
        let earlier = trend_point(&big_convs, DeviceKind::Gtx980Ti, 2013);
        let later = trend_point(&small_convs, DeviceKind::TeslaV100, 2018);
        assert!(gap_growth(&earlier, &later) > 1.0);
    }
}
