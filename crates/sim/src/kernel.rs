//! Kernel descriptors and kernel libraries.
//!
//! Each operator of the computation graph is lowered to a [`KernelSpec`]
//! describing the quantities the cost model needs: floating point work,
//! memory traffic, thread-block count (the unit of intra-operator
//! parallelism the GPU can distribute across SMs) and the efficiency of the
//! library implementation.
//!
//! Convolutions and matrix multiplications are modeled as *tiled GEMMs*: a
//! convolution with output `N×C_out×H×W` over `C_in` input channels is an
//! implicit GEMM of size `M = N·H·W`, `N = C_out`, `K = C_in·k_h·k_w`, tiled
//! into `⌈M/T⌉ · ⌈C_out/T⌉` thread blocks. This is what makes small-batch
//! convolutions unable to fill a large GPU: at batch one the `M` dimension
//! collapses, only a handful of thread blocks exist, and most SMs idle —
//! the central premise of the paper (Figures 1 and 2).

use ios_ir::{Graph, Op, OpId, OpKind, PoolKind, TensorShape};
use serde::{Deserialize, Serialize};

/// Bytes per FP32 element.
const F32_BYTES: u64 = 4;

/// Threads per thread block assumed for all kernels.
pub const THREADS_PER_BLOCK: usize = 256;

/// Warps per thread block (threads / 32).
pub const WARPS_PER_BLOCK: usize = THREADS_PER_BLOCK / 32;

/// The kernel implementation library an operator is executed with.
///
/// The library determines both the GEMM tile size and an efficiency factor
/// (fraction of peak achievable by a fully occupied kernel). The relative
/// values encode the well-known qualitative differences the paper leans on:
/// cuDNN is excellent at dense convolutions but poor at depthwise/separable
/// convolutions, TVM's auto-tuned kernels close that gap (Figure 12), and
/// TensorRT's kernel selection is slightly better than stock cuDNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum KernelLibrary {
    /// Vendor library (cuDNN) — what IOS, TASO, TF and TVM-cuDNN call into.
    #[default]
    CuDnn,
    /// TVM auto-tuned kernels (Ansor-style schedule search).
    TvmAutoTuned,
    /// TensorRT's selected/generated kernels.
    TensorRt,
    /// Unoptimized reference kernels (used in tests as a pessimistic bound).
    Reference,
}

impl KernelLibrary {
    /// GEMM tile edge (square tiles of `tile × tile` outputs per block).
    #[must_use]
    pub fn gemm_tile(self) -> usize {
        match self {
            KernelLibrary::CuDnn => 64,
            KernelLibrary::TvmAutoTuned => 48,
            KernelLibrary::TensorRt => 64,
            KernelLibrary::Reference => 32,
        }
    }

    /// Fraction of peak FLOP/s a fully occupied dense-convolution kernel
    /// reaches with this library.
    #[must_use]
    pub fn conv_efficiency(self) -> f64 {
        match self {
            KernelLibrary::CuDnn => 0.82,
            KernelLibrary::TvmAutoTuned => 0.86,
            KernelLibrary::TensorRt => 0.90,
            KernelLibrary::Reference => 0.35,
        }
    }

    /// Fraction of peak for depthwise-separable convolutions. cuDNN is
    /// notoriously weak here, which is why TVM-AutoTune wins on RandWire and
    /// NasNet in Figure 12.
    #[must_use]
    pub fn sepconv_efficiency(self) -> f64 {
        match self {
            KernelLibrary::CuDnn => 0.38,
            KernelLibrary::TvmAutoTuned => 0.74,
            KernelLibrary::TensorRt => 0.48,
            KernelLibrary::Reference => 0.20,
        }
    }

    /// Fraction of peak for dense matrix multiplications.
    #[must_use]
    pub fn matmul_efficiency(self) -> f64 {
        match self {
            KernelLibrary::CuDnn => 0.85,
            KernelLibrary::TvmAutoTuned => 0.85,
            KernelLibrary::TensorRt => 0.88,
            KernelLibrary::Reference => 0.40,
        }
    }

    /// Fraction of peak memory bandwidth reached by element-wise kernels.
    #[must_use]
    pub fn elementwise_efficiency(self) -> f64 {
        match self {
            KernelLibrary::CuDnn => 0.80,
            KernelLibrary::TvmAutoTuned => 0.85,
            KernelLibrary::TensorRt => 0.85,
            KernelLibrary::Reference => 0.50,
        }
    }
}

/// Everything the cost model needs to know about one GPU kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Name (for timelines and profiling output).
    pub name: String,
    /// Floating point operations.
    pub flops: u64,
    /// DRAM traffic in bytes (activations + weights + outputs).
    pub mem_bytes: u64,
    /// Activation working set (inputs + outputs, excluding weights) — the
    /// quantity compared against L2 capacity for the contention model.
    pub working_set_bytes: u64,
    /// Number of thread blocks the kernel decomposes into.
    pub thread_blocks: usize,
    /// Fraction of peak FLOP/s attainable at full occupancy.
    pub compute_efficiency: f64,
    /// Fraction of peak memory bandwidth attainable.
    pub memory_efficiency: f64,
}

impl KernelSpec {
    /// Number of warps this kernel can keep resident.
    #[must_use]
    pub fn warps(&self) -> usize {
        self.thread_blocks * WARPS_PER_BLOCK
    }

    /// Arithmetic intensity in FLOP/byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.mem_bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.mem_bytes as f64
        }
    }
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Builds the kernel descriptor for a dense 2-D convolution given explicit
/// shapes. Exposed so that the scheduler's operator-merge pass can cost a
/// merged convolution that does not exist as a graph operator.
#[must_use]
pub fn conv2d_kernel(
    name: impl Into<String>,
    input: TensorShape,
    params: ios_ir::Conv2dParams,
    library: KernelLibrary,
) -> KernelSpec {
    let (oh, ow) = input.conv_output_hw(params.kernel, params.stride, params.padding);
    let output = TensorShape::new(input.batch, params.out_channels, oh, ow);
    let k = (input.channels / params.groups) * params.kernel.0 * params.kernel.1;
    let flops = 2 * output.num_elements() as u64 * k as u64
        + if params.activation.is_some() {
            output.num_elements() as u64
        } else {
            0
        };
    let weight_bytes = (params.out_channels * k + params.out_channels) as u64 * F32_BYTES;
    let act_bytes = (input.num_elements() + output.num_elements()) as u64 * F32_BYTES;
    let tile = library.gemm_tile();
    let m = output.batch * output.height * output.width;
    let blocks = ceil_div(m, tile) * ceil_div(params.out_channels, tile) * params.groups.min(4);
    KernelSpec {
        name: name.into(),
        flops,
        mem_bytes: act_bytes + weight_bytes,
        working_set_bytes: act_bytes,
        thread_blocks: blocks.max(1),
        compute_efficiency: library.conv_efficiency(),
        memory_efficiency: library.elementwise_efficiency(),
    }
}

/// Lowers a graph operator to its kernel descriptor.
///
/// # Panics
///
/// Panics if `op` is not part of `graph`.
#[must_use]
pub fn kernel_for_op(graph: &Graph, op_id: OpId, library: KernelLibrary) -> KernelSpec {
    let op = graph.op(op_id);
    let input_shapes = graph.op_input_shapes(op_id);
    kernel_for_op_inner(op, &input_shapes, library)
}

fn kernel_for_op_inner(
    op: &Op,
    input_shapes: &[TensorShape],
    library: KernelLibrary,
) -> KernelSpec {
    let output = op.output_shape;
    let flops = op.flops(input_shapes);
    let mem_bytes = op.memory_bytes(input_shapes, ios_ir::DType::F32);
    let act_bytes: u64 = input_shapes
        .iter()
        .map(|s| s.size_bytes(ios_ir::DType::F32) as u64)
        .sum::<u64>()
        + output.size_bytes(ios_ir::DType::F32) as u64;
    let tile = library.gemm_tile();
    let (thread_blocks, compute_eff) = match &op.kind {
        OpKind::Conv2d(p) => {
            let m = output.batch * output.height * output.width;
            let blocks = ceil_div(m, tile) * ceil_div(p.out_channels, tile);
            (blocks.max(1), library.conv_efficiency())
        }
        OpKind::SepConv2d(p) => {
            // Dominated by the pointwise 1×1 GEMM; the depthwise pass adds
            // blocks but little useful compute, captured by the efficiency.
            let m = output.batch * output.height * output.width;
            let pointwise = ceil_div(m, tile) * ceil_div(p.out_channels, tile);
            let depthwise = ceil_div(output.num_elements(), THREADS_PER_BLOCK);
            (
                (pointwise + depthwise / 4).max(1),
                library.sepconv_efficiency(),
            )
        }
        OpKind::MatMul(p) => {
            let blocks = ceil_div(output.batch, tile) * ceil_div(p.out_features, tile);
            (blocks.max(1), library.matmul_efficiency())
        }
        OpKind::Pool(p) => {
            let blocks = ceil_div(output.num_elements(), THREADS_PER_BLOCK);
            let eff = match p.kind {
                PoolKind::GlobalAvg => library.elementwise_efficiency(),
                _ => library.elementwise_efficiency(),
            };
            (blocks.max(1), eff)
        }
        OpKind::Concat | OpKind::Add | OpKind::Relu | OpKind::Identity => (
            ceil_div(output.num_elements(), THREADS_PER_BLOCK).max(1),
            library.elementwise_efficiency(),
        ),
    };
    KernelSpec {
        name: op.name.clone(),
        flops,
        mem_bytes,
        working_set_bytes: act_bytes,
        thread_blocks,
        compute_efficiency: compute_eff,
        memory_efficiency: library.elementwise_efficiency(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ios_ir::{Conv2dParams, GraphBuilder};

    fn conv_graph(batch: usize) -> Graph {
        let mut b = GraphBuilder::new("g", TensorShape::new(batch, 384, 15, 15));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)));
        b.build(vec![a])
    }

    #[test]
    fn batch_one_conv_has_few_thread_blocks() {
        let g = conv_graph(1);
        let k = kernel_for_op(&g, OpId(0), KernelLibrary::CuDnn);
        // M = 225, N = 384, tile 64 → 4 × 6 = 24 blocks: far fewer than the
        // 80 SMs of a V100, so the kernel cannot fill the device.
        assert_eq!(k.thread_blocks, 24);
        assert!(k.warps() < 80 * 8);
        assert!(k.flops > 100_000_000);
    }

    #[test]
    fn larger_batch_multiplies_blocks() {
        let g1 = conv_graph(1);
        let g32 = conv_graph(32);
        let k1 = kernel_for_op(&g1, OpId(0), KernelLibrary::CuDnn);
        let k32 = kernel_for_op(&g32, OpId(0), KernelLibrary::CuDnn);
        assert!(k32.thread_blocks > 20 * k1.thread_blocks);
        assert_eq!(k32.flops, (32 * k1.flops));
    }

    #[test]
    fn conv2d_kernel_matches_kernel_for_op() {
        let g = conv_graph(1);
        let from_graph = kernel_for_op(&g, OpId(0), KernelLibrary::CuDnn);
        let direct = conv2d_kernel(
            "a",
            TensorShape::new(1, 384, 15, 15),
            Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        );
        assert_eq!(from_graph.flops, direct.flops);
        assert_eq!(from_graph.thread_blocks, direct.thread_blocks);
        assert_eq!(from_graph.mem_bytes, direct.mem_bytes);
    }

    #[test]
    fn sepconv_has_lower_efficiency_under_cudnn_than_tvm() {
        let mut b = GraphBuilder::new("g", TensorShape::new(1, 128, 28, 28));
        let input = b.input(0);
        let s = b.sep_conv2d("s", input, Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)));
        let g = b.build(vec![s]);
        let cudnn = kernel_for_op(&g, OpId(0), KernelLibrary::CuDnn);
        let tvm = kernel_for_op(&g, OpId(0), KernelLibrary::TvmAutoTuned);
        assert!(cudnn.compute_efficiency < 0.5);
        assert!(tvm.compute_efficiency > 1.5 * cudnn.compute_efficiency);
    }

    #[test]
    fn elementwise_kernels_have_zero_or_low_intensity() {
        let mut b = GraphBuilder::new("g", TensorShape::new(1, 64, 28, 28));
        let input = b.input(0);
        let r = b.relu("r", input);
        let g = b.build(vec![r]);
        let k = kernel_for_op(&g, OpId(0), KernelLibrary::CuDnn);
        assert!(k.arithmetic_intensity() < 1.0);
        assert!(k.thread_blocks >= 1);
    }

    #[test]
    fn concat_kernel_moves_bytes_but_no_flops() {
        let mut b = GraphBuilder::new("g", TensorShape::new(1, 64, 28, 28));
        let input = b.input(0);
        let a = b.conv2d("a", input, Conv2dParams::relu(32, (1, 1), (1, 1), (0, 0)));
        let c = b.conv2d("c", input, Conv2dParams::relu(32, (1, 1), (1, 1), (0, 0)));
        let cat = b.concat("cat", &[a, c]);
        let g = b.build(vec![cat]);
        let k = kernel_for_op(&g, OpId(2), KernelLibrary::CuDnn);
        assert_eq!(k.flops, 0);
        assert!(k.mem_bytes > 0);
        assert!(k.arithmetic_intensity() < f64::EPSILON);
    }

    #[test]
    fn merged_conv_has_more_blocks_than_parts() {
        // Two 384-out-channel convs merged into one 768-channel conv must
        // expose at least as much intra-op parallelism as each part.
        let input = TensorShape::new(1, 384, 15, 15);
        let part = conv2d_kernel(
            "p",
            input,
            Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        );
        let merged = conv2d_kernel(
            "m",
            input,
            Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)),
            KernelLibrary::CuDnn,
        );
        assert!(merged.thread_blocks >= 2 * part.thread_blocks);
        // And it reads the shared input only once, so memory traffic is less
        // than the sum of the parts.
        assert!(merged.mem_bytes < 2 * part.mem_bytes);
    }

    #[test]
    fn library_efficiencies_are_ordered_sensibly() {
        assert!(KernelLibrary::TensorRt.conv_efficiency() > KernelLibrary::CuDnn.conv_efficiency());
        assert!(
            KernelLibrary::Reference.conv_efficiency() < KernelLibrary::CuDnn.conv_efficiency()
        );
        assert!(
            KernelLibrary::TvmAutoTuned.sepconv_efficiency()
                > KernelLibrary::CuDnn.sepconv_efficiency()
        );
        assert_eq!(KernelLibrary::default(), KernelLibrary::CuDnn);
    }
}
