//! Minimal, API-compatible stand-in for the `parking_lot` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! small slice of `parking_lot` it uses: [`Mutex`], [`RwLock`] and
//! [`Condvar`] with lock methods that do not return poison `Result`s. All
//! types are thin wrappers over `std::sync`; a poisoned lock (a panic while
//! holding the guard) is recovered rather than propagated, matching
//! parking_lot's "no poisoning" semantics closely enough for this codebase.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, re-acquiring the lock afterwards.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses. Returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
