//! Minimal, API-compatible stand-in for the slice of the `rand` crate this
//! workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::gen_range` / `Rng::gen_bool` methods.
//!
//! The generator is SplitMix64 — deterministic, seedable and statistically
//! fine for test data and simulated measurement noise. The value *stream*
//! differs from the real `rand` crate, which is acceptable here: every use
//! in this workspace only relies on determinism per seed, not on a specific
//! stream.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`low..high`, half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        let mut next = || self.next_u64();
        T::sample_uniform(range.start, range.end, &mut next)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[low, high)` driven by a source of random words.
    fn sample_uniform(low: Self, high: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(low: Self, high: Self, next: &mut dyn FnMut() -> u64) -> Self {
                // Modulo sampling: the tiny modulo bias is irrelevant for
                // test data generation.
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::from(next()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(low: Self, high: Self, next: &mut dyn FnMut() -> u64) -> Self {
                let unit = unit_f64(next()) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f32 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&w));
        }
    }

    #[test]
    fn int_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
        }
        assert!(seen_low);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
