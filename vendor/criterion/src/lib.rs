//! Minimal, API-compatible stand-in for the slice of `criterion` this
//! workspace uses. Benchmarks compile and run (`cargo bench`), measuring a
//! configurable number of timed iterations after one warm-up and printing
//! mean per-iteration wall time — no statistical analysis, HTML reports or
//! outlier detection.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the stand-in; mirrors criterion).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also resists optimizing the body away
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / u32::try_from(self.iterations).unwrap_or(u32::MAX));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size.max(1),
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {label:<50} {mean:>12.3?}/iter"),
        None => println!("bench {label:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group entry point, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("inc", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // One warm-up plus three timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(32).label, "32");
        assert_eq!(BenchmarkId::new("f", "x").label, "f/x");
    }
}
