//! `Serialize` / `Deserialize` implementations for std types.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::msg("expected a boolean"))
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u128))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_number()
                    .and_then(Number::as_u128)
                    .ok_or_else(|| Error::msg(concat!("expected a ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("number out of range for ", stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, u128, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 {
                    Value::Number(Number::UInt(v as u128))
                } else {
                    Value::Number(Number::Int(v))
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_number()
                    .and_then(Number::as_i128)
                    .ok_or_else(|| Error::msg(concat!("expected a ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("number out of range for ", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_number()
            .map(Number::as_f64)
            .ok_or_else(|| Error::msg("expected a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip recovers the f32 bit-for-bit.
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected a string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::msg("expected a one-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a one-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::msg("expected null"))
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::msg("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::msg("expected a tuple array"))?;
                let expected = [$( stringify!($idx) ),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected a tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::msg("expected an object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::msg("expected an object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
