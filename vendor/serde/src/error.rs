//! The single error type shared by serialization and deserialization.

/// A (de)serialization error carrying a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl crate::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl crate::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
