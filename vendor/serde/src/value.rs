//! The JSON-shaped data model every type (de)serializes through.

use std::ops::{Index, IndexMut};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-value map preserving insertion order.
    Object(Map),
}

/// A number: unsigned, signed or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    UInt(u128),
    /// Negative integer.
    Int(i128),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::UInt(u) => u as f64,
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u128` if it is a non-negative integer.
    #[must_use]
    pub fn as_u128(self) -> Option<u128> {
        match self {
            Number::UInt(u) => Some(u),
            Number::Int(i) => u128::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u128::MAX as f64 => {
                Some(f as u128)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i128` if it is an integer.
    #[must_use]
    pub fn as_i128(self) -> Option<i128> {
        match self {
            Number::UInt(u) => i128::try_from(u).ok(),
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Some(f as i128),
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` under `key`, replacing any previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// The value under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Value {
    /// The value as a map if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the map if the value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number if it is numeric.
    #[must_use]
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// True if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.as_object()
            .unwrap_or_else(|| panic!("cannot index {} with a string key", self.type_name()))
            .get(key)
            .unwrap_or_else(|| panic!("no entry for key {key:?}"))
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let ty = self.type_name();
        self.as_object_mut()
            .unwrap_or_else(|| panic!("cannot index {ty} with a string key"))
            .get_mut(key)
            .unwrap_or_else(|| panic!("no entry for key {key:?}"))
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            other => panic!("cannot index {} with a usize", other.type_name()),
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index {} with a usize", other.type_name()),
        }
    }
}
