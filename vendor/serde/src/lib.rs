//! Minimal, API-compatible stand-in for the slice of `serde` this workspace
//! uses.
//!
//! The build container has no network access, so the workspace vendors a
//! small serde look-alike instead of the real crate. The public surface
//! mirrors serde where the codebase touches it — `#[derive(Serialize,
//! Deserialize)]`, the `Serialize` / `Deserialize` / `Serializer` /
//! `Deserializer` traits (enough for `#[serde(with = "module")]` adapters) —
//! but the data model is deliberately simple: everything serializes into the
//! JSON-shaped [`Value`] tree, and `serde_json` (also vendored) renders or
//! parses that tree as JSON text.
//!
//! Supported derive shapes (everything this workspace defines): structs with
//! named fields, unit structs, tuple structs (newtypes serialize
//! transparently), enums with unit / newtype / tuple / struct variants
//! (externally tagged, like real serde), and the `#[serde(with = "path")]`
//! field attribute.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Map, Number, Value};

/// A type that can be serialized into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;

    /// Serializes `self` with the given serializer (mirrors serde's entry
    /// point; the default implementation routes through [`Value`]).
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        Self: Sized,
    {
        serializer.serialize_value(self.to_value())
    }
}

/// A type that can be deserialized from the [`Value`] data model.
///
/// The lifetime parameter exists for signature compatibility with real serde
/// (`D: Deserializer<'de>` bounds); this stand-in always deserializes from
/// owned values.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first mismatch between the value and
    /// the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Deserializes from the given deserializer (mirrors serde's entry
    /// point; the default implementation routes through [`Value`]).
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::custom)
    }
}

/// A `Deserialize` implementation that does not borrow from its input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A data format that can consume the [`Value`] data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Consumes a fully built [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce the [`Value`] data model.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    /// Produces the input as a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Serialization-side error support, mirroring `serde::ser`.
pub mod ser {
    /// Trait implemented by serializer error types.
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support, mirroring `serde::de`.
pub mod de {
    /// Trait implemented by deserializer error types.
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// The identity [`Serializer`]: returns the [`Value`] tree unchanged. Used
/// by derived code to drive `#[serde(with = "...")]` adapter modules.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// The identity [`Deserializer`]: yields a clone of the wrapped [`Value`].
/// Used by derived code to drive `#[serde(with = "...")]` adapter modules.
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'a>(pub &'a Value);

impl<'de, 'a> Deserializer<'de> for ValueDeserializer<'a> {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0.clone())
    }
}
