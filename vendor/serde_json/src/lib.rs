//! Minimal, API-compatible stand-in for the slice of `serde_json` this
//! workspace uses: `to_value` / `from_value`, `to_string` /
//! `to_string_pretty` / `from_str`, the [`Value`] tree (re-exported from the
//! vendored `serde`), and the [`json!`] macro.
//!
//! Floats are written with Rust's shortest round-trippable `Display`
//! representation, so `to_string` → `from_str` round trips recover every
//! finite `f64` exactly.

#![warn(missing_docs)]

mod read;
mod write;

pub use serde::{Error, Map, Number, Value};

use serde::{DeserializeOwned, Serialize};

/// Serializes any value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for types serialized through the vendored data model; the
/// `Result` mirrors the real serde_json signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a typed value out of a [`Value`] tree.
///
/// # Errors
///
/// Returns a message describing the first shape mismatch.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serializes a value as compact JSON text.
///
/// # Errors
///
/// Fails only on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    write::write_value(&value.to_value(), None)
}

/// Serializes a value as 2-space-indented JSON text.
///
/// # Errors
///
/// Fails only on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    write::write_value(&value.to_value(), Some(2))
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns a message describing the first syntax error or shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = read::parse(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like syntax: `json!({"key": [1, null]})`.
///
/// Supported element forms: `null`, nested `{...}` / `[...]`, negative
/// number literals, and any single-token Rust expression (numbers, strings,
/// bools, variables).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($content:tt)* ]) => {
        $crate::Value::Array($crate::__json_array!(@acc [] $($content)*))
    };
    ({ $($content:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::__json_object!(__map; $($content)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! literal")
    };
}

/// Implementation detail of [`json!`]: array elements, accumulated as
/// expressions so the expansion is a single `vec![...]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    (@acc [$($elems:expr,)*]) => {
        ::std::vec![$($elems),*]
    };
    (@acc [$($elems:expr,)*] - $value:tt , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($elems,)* $crate::json!(- $value),] $($rest)*)
    };
    (@acc [$($elems:expr,)*] - $value:tt) => {
        $crate::__json_array!(@acc [$($elems,)* $crate::json!(- $value),])
    };
    (@acc [$($elems:expr,)*] $value:tt , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($elems,)* $crate::json!($value),] $($rest)*)
    };
    (@acc [$($elems:expr,)*] $value:tt) => {
        $crate::__json_array!(@acc [$($elems,)* $crate::json!($value),])
    };
}

/// Implementation detail of [`json!`]: object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident;) => {};
    ($map:ident; $key:literal : - $value:tt , $($rest:tt)*) => {
        $map.insert($key, $crate::json!(- $value));
        $crate::__json_object!($map; $($rest)*);
    };
    ($map:ident; $key:literal : - $value:tt) => {
        $map.insert($key, $crate::json!(- $value));
    };
    ($map:ident; $key:literal : $value:tt , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($value));
        $crate::__json_object!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:tt) => {
        $map.insert($key, $crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["0", "-17", "3.5", "true", "null", "\"a\\nb\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE, -2.5e-7] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = json!({ "a": [1, 2, {"b": null}], "c": "x", "d": -4, "e": 2.25 });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // Integer literals may change representation class but not meaning;
        // the tree itself is compared structurally.
        assert_eq!(to_string(&back).unwrap(), text);
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"], Value::String("x".into()));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": [1] });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"), "{pretty}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} nul \u{0}";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn value_indexing_and_mutation() {
        let mut v = json!({ "ops": [ {"inputs": [ {"Input": 0} ]} ] });
        v["ops"][0]["inputs"][0] = json!({ "Input": 7 });
        assert_eq!(v["ops"][0]["inputs"][0]["Input"], json!(7));
    }
}
