//! A small recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Map, Number, Value};

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::msg(format!("{message} (at byte {})", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{keyword}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::Float(f)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let magnitude: u128 = stripped.parse().map_err(|_| self.error("invalid number"))?;
            let signed =
                i128::try_from(magnitude).map_err(|_| self.error("integer out of range"))?;
            Ok(Value::Number(Number::Int(-signed)))
        } else {
            let u: u128 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::UInt(u)))
        }
    }
}
