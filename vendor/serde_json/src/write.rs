//! JSON text output.

use serde::{Error, Number, Value};
use std::fmt::Write as _;

/// Renders a [`Value`] as JSON text; `indent` of `Some(n)` pretty-prints
/// with `n`-space indentation.
pub fn write_value(value: &Value, indent: Option<usize>) -> Result<String, Error> {
    let mut out = String::new();
    write_inner(value, indent, 0, &mut out)?;
    Ok(out)
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_inner(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out)?,
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_inner(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_inner(item, indent, depth + 1, out)?;
            }
            if !map.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_number(number: Number, out: &mut String) -> Result<(), Error> {
    match number {
        Number::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent a non-finite float"));
            }
            // Rust's `Display` for floats is the shortest representation
            // that parses back to the same bits, so round trips are exact.
            let _ = write!(out, "{f}");
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
