//! Minimal, API-compatible stand-in for the slice of `proptest` this
//! workspace uses: the [`proptest!`] macro with `pattern in strategy`
//! arguments and an optional `#![proptest_config(...)]` header, `any::<T>()`,
//! integer range strategies, `collection::vec`, and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is no shrinking and no persistent failure
//! file: each test case is generated from a deterministic per-case seed, so
//! failures reproduce bit-for-bit on every run.

#![warn(missing_docs)]

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this stand-in runs fewer cases
        // because the suite executes on a single-core CI box.
        ProptestConfig { cases: 48 }
    }
}

/// A source of values for one `pattern in strategy` binding.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy, mirroring `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// A strategy producing unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The deterministic generator driving test-case generation.
pub mod test_runner {
    /// SplitMix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given test case index. The constant offset
        /// decorrelates neighbouring cases.
        #[must_use]
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strategy) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                $( let $pat = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(x in 3usize..9, y in any::<u64>()) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
        }

        #[test]
        fn vectors_have_sampled_lengths(xs in collection::vec(0usize..128, 0..40)) {
            prop_assert!(xs.len() < 40);
            prop_assert!(xs.iter().all(|&v| v < 128));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic(3);
        let mut b = TestRng::deterministic(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
