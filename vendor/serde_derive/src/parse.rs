//! Hand-rolled parser for the derive input token stream.
//!
//! Only the declaration shapes used in this workspace are supported; any
//! other shape produces a compile error naming the limitation instead of
//! silently generating wrong code.

use crate::{is_group, is_ident, is_punct};
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` declaration.
pub struct Input {
    /// Type name.
    pub name: String,
    /// Shape of the declaration.
    pub kind: Kind,
}

/// The shape of the derived type.
pub enum Kind {
    /// `struct X;`
    UnitStruct,
    /// `struct X(A, B);` with the field count.
    TupleStruct(usize),
    /// `struct X { a: A, ... }`
    NamedStruct(Vec<Field>),
    /// `enum X { ... }`
    Enum(Vec<Variant>),
}

/// A named field, possibly carrying `#[serde(with = "path")]`.
pub struct Field {
    /// Field name.
    pub name: String,
    /// The `with` adapter module path, if any.
    pub with: Option<String>,
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Shape of the variant.
    pub kind: VariantKind,
}

/// The shape of an enum variant.
pub enum VariantKind {
    /// `Variant`
    Unit,
    /// `Variant(A, ...)` with the field count.
    Tuple(usize),
    /// `Variant { a: A, ... }`
    Struct(Vec<Field>),
}

/// Parses the item a derive macro was attached to.
pub fn parse_item(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Item-level attributes (doc comments, #[must_use], ...). A container
    // level #[serde(...)] attribute would change the wire shape, so reject.
    if parse_attributes(&tokens, &mut i)?.is_some() {
        return Err(
            "the serde stand-in does not support container-level #[serde] attributes".to_string(),
        );
    }
    skip_visibility(&tokens, &mut i);

    let keyword = ident_at(&tokens, &mut i, "`struct` or `enum`")?;
    let name = ident_at(&tokens, &mut i, "type name")?;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        return Err(format!(
            "the serde stand-in cannot derive for generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok(Input {
                name,
                kind: Kind::UnitStruct,
            }),
            Some(t) if is_punct(t, ';') => Ok(Input {
                name,
                kind: Kind::UnitStruct,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Input {
                    name,
                    kind: Kind::NamedStruct(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(other) => Err(format!("unexpected token `{other}` in struct `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Input {
                    name,
                    kind: Kind::Enum(variants),
                })
            }
            _ => Err(format!("expected a brace-delimited body for enum `{name}`")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Skips attributes starting at `*i`; returns the `with` path if a
/// `#[serde(with = "path")]` attribute was among them.
///
/// Any other `#[serde(...)]` content is an error: the stand-in would change
/// the wire format silently if it ignored, say, `rename` or `default`.
fn parse_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<Option<String>, String> {
    let mut with = None;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        // Inner attributes (`#![...]`) cannot appear here; the `!` would
        // belong to the item body.
        let TokenTree::Group(group) = &tokens[*i] else {
            return Err("malformed attribute".to_string());
        };
        if group.delimiter() != Delimiter::Bracket {
            return Err("malformed attribute".to_string());
        }
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if inner.first().is_some_and(|t| is_ident(t, "serde")) {
            with = Some(parse_serde_with(&inner)?);
        }
        *i += 1;
    }
    Ok(with)
}

/// Parses the payload of `#[serde(with = "path")]`.
fn parse_serde_with(attr: &[TokenTree]) -> Result<String, String> {
    let Some(TokenTree::Group(args)) = attr.get(1) else {
        return Err("unsupported #[serde] attribute form".to_string());
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match (args.first(), args.get(1), args.get(2), args.len()) {
        (Some(key), Some(eq), Some(TokenTree::Literal(lit)), 3)
            if is_ident(key, "with") && is_punct(eq, '=') =>
        {
            let text = lit.to_string();
            let path = text.trim_matches('"');
            if path.len() == text.len() {
                return Err("#[serde(with = ...)] expects a string literal".to_string());
            }
            Ok(path.to_string())
        }
        _ => Err(
            "the serde stand-in only supports the #[serde(with = \"module\")] attribute"
                .to_string(),
        ),
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, ...
        if *i < tokens.len() && is_group(&tokens[*i], Delimiter::Parenthesis) {
            *i += 1;
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: &mut usize, what: &str) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected {what}, found {other:?}")),
    }
}

/// Skips a type starting at `*i` up to (and past) the next top-level comma.
/// Commas nested in angle brackets (`Vec<(A, B)>` parenthesised tuples are
/// groups already) do not terminate the type.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        let t = &tokens[*i];
        if is_punct(t, '<') {
            angle_depth += 1;
        } else if is_punct(t, '>') {
            angle_depth = angle_depth.saturating_sub(1);
        } else if is_punct(t, ',') && angle_depth == 0 {
            *i += 1;
            return;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let with = parse_attributes(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        let name = ident_at(&tokens, &mut i, "field name")?;
        if !tokens.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field { name, with });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        // Variant attributes (doc comments, #[default]); a #[serde] here
        // would be a rename/skip and is rejected by parse_attributes.
        if parse_attributes(&tokens, &mut i)?.is_some() {
            return Err(
                "the serde stand-in does not support #[serde] attributes on variants".to_string(),
            );
        }
        let name = ident_at(&tokens, &mut i, "variant name")?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if tokens.get(i).is_some_and(|t| is_punct(t, '=')) {
            return Err(format!(
                "the serde stand-in does not support explicit discriminants (variant `{name}`)"
            ));
        }
        if tokens.get(i).is_some_and(|t| is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}
