//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Real serde_derive builds on `syn`/`quote`; neither is available offline,
//! so this macro parses the item declaration directly from the token stream.
//! That is tractable because the supported shapes are exactly the ones this
//! workspace defines:
//!
//! * structs with named fields (any visibility), unit structs, and tuple
//!   structs — single-field tuple structs (newtypes) serialize
//!   transparently as their inner value, like real serde;
//! * enums with unit, newtype, tuple and struct variants, externally tagged
//!   (`"Variant"` / `{"Variant": ...}`), like real serde;
//! * the `#[serde(with = "module")]` field attribute, which routes the field
//!   through `module::serialize` / `module::deserialize`.
//!
//! Generics and other serde attributes are rejected with a compile error
//! rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Field, Input, Kind, VariantKind};

/// Derives `serde::Serialize` (the vendored stand-in's trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (the vendored stand-in's trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let parsed = match parse::parse_item(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});")
                .parse()
                .expect("valid error tokens")
        }
    };
    gen(&parsed)
        .parse()
        .expect("derive output must be valid Rust")
}

fn serialize_field_expr(field: &Field, access: &str) -> String {
    match &field.with {
        None => format!("::serde::Serialize::to_value(&{access})"),
        Some(path) => format!(
            "match {path}::serialize(&{access}, ::serde::ValueSerializer) {{ \
                 ::core::result::Result::Ok(__v) => __v, \
                 ::core::result::Result::Err(__e) => ::core::panic!(\"{{}}\", __e), \
             }}"
        ),
    }
}

fn deserialize_field_expr(field: &Field, source: &str) -> String {
    match &field.with {
        None => format!("::serde::Deserialize::from_value({source})?"),
        Some(path) => format!("{path}::deserialize(::serde::ValueDeserializer({source}))?"),
    }
}

fn named_fields_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut body = String::from("let mut __map = ::serde::Map::new();\n");
    for field in fields {
        let expr = serialize_field_expr(field, &format!("{access_prefix}{}", field.name));
        body.push_str(&format!("__map.insert(\"{}\", {expr});\n", field.name));
    }
    body.push_str("::serde::Value::Object(__map)");
    body
}

fn named_fields_from_map(fields: &[Field], map_var: &str) -> String {
    let mut body = String::new();
    for field in fields {
        let source = format!(
            "{map_var}.get(\"{name}\").ok_or_else(|| \
             ::serde::Error::msg(\"missing field `{name}`\"))?",
            name = field.name
        );
        body.push_str(&format!(
            "{}: {},\n",
            field.name,
            deserialize_field_expr(field, &source)
        ));
    }
    body
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => named_fields_to_value(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ \
                                 let mut __map = ::serde::Map::new(); \
                                 __map.insert(\"{vname}\", {inner}); \
                                 ::serde::Value::Object(__map) \
                             }},\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ \
                                 let __inner = {{ {inner} }}; \
                                 let mut __map = ::serde::Map::new(); \
                                 __map.insert(\"{vname}\", __inner); \
                                 ::serde::Value::Object(__map) \
                             }},\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!(
            "if __value.is_null() {{ ::core::result::Result::Ok({name}) }} \
             else {{ ::core::result::Result::Err(::serde::Error::msg(\"expected null for unit \
             struct {name}\")) }}"
        ),
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::msg(\"expected an array for tuple struct {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::msg(\"wrong tuple length for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => format!(
            "let __map = __value.as_object().ok_or_else(|| \
             ::serde::Error::msg(\"expected an object for struct {name}\"))?;\n\
             ::core::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = named_fields_from_map(fields, "__map")
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ \
                                 let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::msg(\"expected an array for variant {vname}\"))?; \
                                 if __items.len() != {n} {{ return ::core::result::Result::Err(\
                                 ::serde::Error::msg(\"wrong tuple length for variant {vname}\")); }} \
                                 ::core::result::Result::Ok({name}::{vname}({items})) \
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ \
                                 let __map = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::msg(\"expected an object for variant {vname}\"))?; \
                                 ::core::result::Result::Ok({name}::{vname} {{ {fields} }}) \
                             }},\n",
                            fields = named_fields_from_map(fields, "__map")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__map) if __map.len() == 1 => {{\n\
                         let (__key, __inner) = __map.iter().next().expect(\"len checked\");\n\
                         match __key.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::core::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::core::result::Result::Err(::serde::Error::msg(\
                         \"expected a string or single-key object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

pub(crate) fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

pub(crate) fn is_ident(tree: &TokenTree, word: &str) -> bool {
    matches!(tree, TokenTree::Ident(id) if id.to_string() == word)
}

pub(crate) fn is_group(tree: &TokenTree, delimiter: Delimiter) -> bool {
    matches!(tree, TokenTree::Group(g) if g.delimiter() == delimiter)
}
