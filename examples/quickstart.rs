//! Quickstart: optimize a small multi-branch block with IOS and compare the
//! resulting schedule against the sequential and greedy baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use ios::prelude::*;

fn main() {
    // 1. Describe a computation graph (the motivating block of Figure 2 of
    //    the paper: four convolutions reading the same input).
    let mut builder = GraphBuilder::new("quickstart_block", TensorShape::new(1, 384, 15, 15));
    let input = builder.input(0);
    let a = builder.conv2d(
        "conv_a",
        input,
        Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
    );
    let b = builder.conv2d(
        "conv_b",
        input,
        Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)),
    );
    let c = builder.conv2d(
        "conv_c",
        input,
        Conv2dParams::relu(384, (3, 3), (1, 1), (1, 1)),
    );
    let d = builder.conv2d(
        "conv_d",
        input,
        Conv2dParams::relu(768, (3, 3), (1, 1), (1, 1)),
    );
    let out = builder.concat("concat", &[a, b, c, d]);
    let graph = builder.build(vec![out]);

    // 2. Pick a device to optimize for. The simulator plays the role of the
    //    paper's on-device profiler.
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));

    // 3. Run the IOS dynamic program.
    let result = schedule_graph(&graph, &cost, &SchedulerConfig::paper_default());
    println!("{}", result.schedule.render(&graph));
    println!(
        "search explored {} states / {} transitions in {:.1} ms",
        result.states,
        result.transitions,
        result.search_seconds * 1e3
    );

    // 4. Compare against the baselines of Section 6.1.
    let sequential = sequential_schedule(&graph, &cost);
    let greedy = greedy_schedule(&graph, &cost);
    println!(
        "sequential latency: {:8.1} µs",
        sequential.total_measured_latency_us()
    );
    println!(
        "greedy latency:     {:8.1} µs",
        greedy.total_measured_latency_us()
    );
    println!("IOS latency:        {:8.1} µs", result.latency_us);
    println!(
        "speedup over sequential: {:.2}x, over greedy: {:.2}x",
        sequential.total_measured_latency_us() / result.latency_us,
        greedy.total_measured_latency_us() / result.latency_us
    );
}
