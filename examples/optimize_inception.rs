//! Optimize the full Inception V3 network block by block, print the
//! per-block schedules and the end-to-end speedup over the sequential and
//! greedy baselines — the Figure 6 experiment for one network.
//!
//! Run with: `cargo run --release --example optimize_inception`

use ios::prelude::*;

fn main() {
    let batch = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let network = ios::models::inception_v3(batch);
    println!(
        "Inception V3: {} blocks, {} operators, {:.1} GFLOPs at batch {batch}",
        network.num_blocks(),
        network.num_operators(),
        network.total_flops() as f64 / 1e9
    );

    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let config = SchedulerConfig::paper_default();

    let sequential = sequential_network_schedule(&network, &cost);
    let greedy = greedy_network_schedule(&network, &cost);
    let report = optimize_network(&network, &cost, &config);

    println!("\nper-block schedules found by IOS:");
    for (block, schedule) in network.blocks.iter().zip(&report.schedule.block_schedules) {
        println!(
            "  {:<22} {:>2} ops → {:>2} stages, {:>8.1} µs",
            block.graph.name(),
            block.graph.len(),
            schedule.num_stages(),
            schedule.total_measured_latency_us()
        );
    }

    println!("\nend-to-end latency (batch {batch}):");
    println!("  sequential: {:8.3} ms", sequential.latency_ms());
    println!("  greedy:     {:8.3} ms", greedy.latency_ms());
    println!("  IOS:        {:8.3} ms", report.schedule.latency_ms());
    println!(
        "  speedup: {:.2}x over sequential, {:.2}x over greedy",
        sequential.latency_us / report.schedule.latency_us,
        greedy.latency_us / report.schedule.latency_us
    );
    println!(
        "  search cost: {} stage measurements, {:.1} s wall clock",
        report.measurements, report.search_seconds
    );
}
