//! Define a custom multi-branch CNN, optimize it for two different GPUs, and
//! verify numerically (on the CPU reference backend) that the IOS schedule —
//! including merged stages — computes exactly the same tensors as the
//! original graph.
//!
//! Run with: `cargo run --release --example custom_network`

use ios::backend::verify_schedule;
use ios::prelude::*;

fn build_block() -> Graph {
    let mut b = GraphBuilder::new("custom_block", TensorShape::new(1, 96, 20, 20));
    let x = b.input(0);
    // Two mergeable 3x3 convolutions plus a cheap 1x1 branch and a pooled branch.
    let left = b.conv2d(
        "left_3x3",
        x,
        Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)),
    );
    let right = b.conv2d(
        "right_3x3",
        x,
        Conv2dParams::relu(64, (3, 3), (1, 1), (1, 1)),
    );
    let cheap = b.conv2d(
        "cheap_1x1",
        x,
        Conv2dParams::relu(32, (1, 1), (1, 1), (0, 0)),
    );
    let pooled = b.pool("pool", x, ios::ir::PoolParams::avg((3, 3), (1, 1), (1, 1)));
    let pooled = b.conv2d(
        "pool_proj",
        pooled,
        Conv2dParams::relu(32, (1, 1), (1, 1), (0, 0)),
    );
    let deep = b.conv2d(
        "deep_3x3",
        left,
        Conv2dParams::relu(128, (3, 3), (1, 1), (1, 1)),
    );
    let out = b.concat("concat", &[deep, right, cheap, pooled]);
    b.build(vec![out])
}

fn main() {
    let graph = build_block();
    println!(
        "custom block: {} operators, width {}",
        graph.len(),
        ios::ir::dag_width(&graph)
    );

    for device in [DeviceKind::TeslaV100, DeviceKind::TeslaK80] {
        let cost = SimCostModel::new(Simulator::new(device));
        let result = schedule_graph(&graph, &cost, &SchedulerConfig::paper_default());
        let sequential = sequential_schedule(&graph, &cost);
        println!("\noptimized for {device}:");
        print!("{}", result.schedule.render(&graph));
        println!(
            "  latency {:.1} µs vs sequential {:.1} µs ({:.2}x)",
            result.latency_us,
            sequential.total_measured_latency_us(),
            sequential.total_measured_latency_us() / result.latency_us
        );

        // Numerical verification on the CPU reference backend: the schedule
        // (concurrent groups, merged kernels, splits) computes the same
        // tensors as a plain sequential execution of the graph.
        let max_diff = verify_schedule(&graph, &result.schedule, 42);
        println!("  max |difference| vs reference execution: {max_diff:.2e}");
        assert!(max_diff < 1e-3, "schedule changed the network's semantics");
    }
    println!("\nboth schedules preserve the network's output exactly (up to float rounding).");
}
