//! Demo of the `ios-serve` online runtime: real numerics through the CPU
//! reference backend on a small network, then a serving-throughput
//! comparison on SqueezeNet accounted in simulated V100 device time.
//!
//! Run with: `cargo run --release --example serve_demo`

use ios::backend::TensorData;
use ios::prelude::*;
use std::time::Duration;

/// A small two-branch network so the CPU numerics part of the demo runs in
/// seconds.
fn small_network() -> Network {
    let input = TensorShape::new(1, 8, 12, 12);
    let mut b = GraphBuilder::new("demo_block", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    Network::new(
        "demo_net",
        input,
        vec![ios::ir::Block::new(b.build(vec![cat]))],
    )
}

fn main() {
    // --- Part 1: online inference with real numerics --------------------
    let network = small_network();
    println!(
        "== serving `{}` on the CPU reference backend ==",
        network.name
    );
    let engine = ServeEngine::start(
        network.clone(),
        ServeConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(5)),
    );

    let handles: Vec<_> = (0..10)
        .map(|i| {
            engine
                .submit(TensorData::random(network.input_shape, i))
                .expect("accepted")
        })
        .collect();
    for handle in handles {
        let r = handle.wait();
        println!(
            "  {}: batch {} | schedule {:?} | queue {:.0} µs | total {:.0} µs",
            r.id, r.batch_size, r.schedule_source, r.queue_us, r.total_us
        );
    }
    let m = engine.metrics();
    println!(
        "  metrics: {} requests in {} batches (mean {:.2}), p50 {:.0} µs, p99 {:.0} µs, \
         cache hit rate {:.2}",
        m.completed,
        m.batches,
        m.mean_batch_size,
        m.p50_latency_us,
        m.p99_latency_us,
        m.cache.hit_rate()
    );
    engine.shutdown();

    // --- Part 2: why batching matters, on the simulated device ----------
    let squeezenet = ios::models::squeezenet(1);
    println!(
        "\n== batched vs naive serving of `{}` (simulated V100) ==",
        squeezenet.name
    );
    let mut device_rps = Vec::new();
    for (label, max_batch) in [("naive (batch 1)", 1usize), ("batched (batch 32)", 32)] {
        let engine = ServeEngine::start_simulated(
            squeezenet.clone(),
            ServeConfig::default()
                .with_max_batch(max_batch)
                .with_workers(1)
                .with_max_wait(Duration::from_millis(50)),
        );
        let input = TensorData::zeros(squeezenet.input_shape);
        let handles: Vec<_> = (0..64)
            .map(|_| engine.submit(input.clone()).expect("accepted"))
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
        let m = engine.metrics();
        println!(
            "  {label:<20} mean batch {:>6.2} | device time {:>8.2} ms | {:>9.1} req/s of device",
            m.mean_batch_size,
            m.device_time_us / 1e3,
            m.device_throughput_rps
        );
        device_rps.push(m.device_throughput_rps);
        engine.shutdown();
    }
    println!(
        "  => dynamic batching buys {:.2}x device throughput (Table 3 schedules per batch size)",
        device_rps[1] / device_rps[0]
    );
}
