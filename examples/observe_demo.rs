//! Demo of the `ios-telemetry` observability layer: serve a small network
//! through a forced two-segment pipeline with the span tracer enabled,
//! then export the run as a Chrome trace (load it in `chrome://tracing` or
//! Perfetto) and as a Prometheus text exposition.
//!
//! Run with: `cargo run --release --example observe_demo`

use ios::backend::TensorData;
use ios::prelude::*;
use ios::telemetry;
use std::time::Duration;

/// A three-block chain so the forced pipeline has real boundaries to cut.
fn three_block_network() -> Network {
    use ios::ir::Block;
    let input = TensorShape::new(1, 6, 10, 10);
    let mut b = GraphBuilder::new("observe_b0", input);
    let x = b.input(0);
    let a = b.conv2d("a", x, Conv2dParams::relu(8, (3, 3), (1, 1), (1, 1)));
    let c = b.conv2d("c", x, Conv2dParams::relu(8, (1, 1), (1, 1), (0, 0)));
    let cat = b.concat("cat", &[a, c]);
    let block0 = Block::new(b.build(vec![cat]));
    let mut b = GraphBuilder::with_inputs("observe_b1", block0.graph.output_shapes());
    let x = b.input(0);
    let d = b.conv2d("d", x, Conv2dParams::relu(12, (3, 3), (1, 1), (1, 1)));
    let block1 = Block::new(b.build(vec![d]));
    let mut b = GraphBuilder::with_inputs("observe_b2", block1.graph.output_shapes());
    let x = b.input(0);
    let e = b.conv2d("e", x, Conv2dParams::relu(6, (1, 1), (1, 1), (0, 0)));
    let block2 = Block::new(b.build(vec![e]));
    Network::new("observe_net", input, vec![block0, block1, block2])
}

fn main() {
    let network = three_block_network();

    // Recording is off by default (instrumentation costs one atomic load
    // per site); enable it around the window of interest. Enabling before
    // engine start also captures the optimizer's per-block DP spans.
    telemetry::tracer().set_enabled(true);

    let engine = ServeEngine::start(
        network.clone(),
        ServeConfig::default()
            .with_max_batch(4)
            .with_workers(1)
            .with_pipeline(PipelineMode::Forced(2))
            .with_max_wait(Duration::from_millis(5)),
    );
    println!(
        "== serving `{}` through a forced 2-segment pipeline, tracer on ==",
        network.name
    );

    let handles: Vec<_> = (0..12)
        .map(|i| {
            engine
                .submit(TensorData::random(network.input_shape, i))
                .expect("accepted")
        })
        .collect();
    for handle in handles {
        let r = handle.wait();
        assert!(r.pipelined, "forced mode routes every batch");
    }
    telemetry::tracer().set_enabled(false);

    // --- Chrome trace export --------------------------------------------
    let trace_json = engine.trace_dump();
    let records = telemetry::tracer().records();
    let mut by_name: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for r in &records {
        *by_name.entry(r.name).or_default() += 1;
    }
    println!("\ncaptured {} trace records:", records.len());
    for (name, count) in &by_name {
        println!("  {count:>5} × {name}");
    }
    let path = std::env::temp_dir().join("ios_observe_trace.json");
    std::fs::write(&path, &trace_json).expect("write trace");
    println!(
        "Chrome trace written to {} ({} bytes) — open in chrome://tracing",
        path.display(),
        trace_json.len()
    );

    // --- Prometheus exposition ------------------------------------------
    let text = engine.prometheus_text();
    let samples = telemetry::prometheus::validate(&text).expect("well-formed exposition");
    println!("\nPrometheus exposition ({samples} samples); non-histogram series:");
    for line in text.lines() {
        if !line.starts_with('#') && !line.contains("_bucket") && !line.contains("_sum") {
            println!("  {line}");
        }
    }

    let m = engine.metrics();
    println!(
        "\nsnapshot: p50 {:.0} µs, p99 {:.0} µs, mean queue wait {:.0} µs, \
         mean batch assembly {:.0} µs",
        m.p50_latency_us, m.p99_latency_us, m.mean_queue_wait_us, m.mean_assembly_us
    );
    engine.shutdown();
}
