//! Reproduce the Table 3 specialization study on a single Inception block:
//! optimize the same graph for batch 1 and batch 32 and show that each
//! schedule wins under the configuration it was optimized for, and that the
//! batch-32 schedule uses operator merge (Figure 10).
//!
//! Run with: `cargo run --release --example batch_specialization`

use ios::core::{cross_evaluate, ExecutionContext};
use ios::ir::{Block, Network};
use ios::models::inception::inception_v3_last_block;
use ios::prelude::*;

fn main() {
    let cost = SimCostModel::new(Simulator::new(DeviceKind::TeslaV100));
    let config = SchedulerConfig::paper_default();

    // The same block at two batch sizes.
    let networks: Vec<(usize, Network)> = [1usize, 32]
        .iter()
        .map(|&b| {
            let graph = inception_v3_last_block(b);
            (
                b,
                Network::new(
                    format!("last_block_b{b}"),
                    graph.input_shapes()[0],
                    vec![Block::new(graph)],
                ),
            )
        })
        .collect();

    // Optimize a schedule per batch size.
    let schedules: Vec<(String, NetworkSchedule)> = networks
        .iter()
        .map(|(b, net)| {
            (
                format!("batch {b}"),
                optimize_network(net, &cost, &config).schedule,
            )
        })
        .collect();

    for ((batch, net), (_, schedule)) in networks.iter().zip(&schedules) {
        let merges = schedule.block_schedules[0]
            .stages
            .iter()
            .filter(|s| s.strategy == ParallelizationStrategy::OperatorMerge)
            .count();
        println!(
            "schedule optimized for batch {batch}: {} stages, {merges} merged stage(s)",
            schedule.num_stages()
        );
        print!(
            "{}",
            schedule.block_schedules[0].render(&net.blocks[0].graph)
        );
        println!();
    }

    // Cross evaluate: each schedule under each batch size.
    let contexts: Vec<ExecutionContext<'_, _>> = networks
        .iter()
        .map(|(b, net)| ExecutionContext::new(format!("batch {b}"), net, &cost))
        .collect();
    let schedule_refs: Vec<(String, &NetworkSchedule)> =
        schedules.iter().map(|(l, s)| (l.clone(), s)).collect();
    let cells = cross_evaluate(&contexts, &schedule_refs);
    println!("cross-evaluation matrix (rows = executed on, columns = optimized for):");
    for cell in &cells {
        println!(
            "  executed on {:<9} with schedule for {:<9} → {:8.3} ms",
            cell.executed_on, cell.optimized_for, cell.latency_ms
        );
    }
    println!("\nthe diagonal (schedule matching the execution batch size) is always the fastest,");
    println!("mirroring Table 3 (1) of the paper.");
}
